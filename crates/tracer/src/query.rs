//! The trace query / verification language (paper §4.4).
//!
//! Queries quantify over the set `S` of states in a simulation trace and
//! test first-order formulas about token counts and firing counts, plus
//! the temporal operator `inev` from the reachability-graph analyzer
//! `[MR87]` (interpreted linearly over the trace):
//!
//! ```text
//! forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]
//! exists s in (S - {#0}) [ Empty_I_buffers(s) = 6 ]
//! exists s in S [ exec_type_5(s) > 0 ]
//! forall s in {s' in S | Bus_busy(s')} [ inev(s, Bus_free(C), true) ]
//! ```
//!
//! `#0` is the initial state; `C` is the implicitly bound "current
//! state" inside `inev`; `name(s)` is the token count of place `name`
//! (or the concurrent-firing count of transition `name`) in state `s`.
//! A bare `P(s)` in formula position means `P(s) > 0`, matching the
//! paper's set comprehension `{s' in S | Bus_busy(s')}`.

use pnut_trace::{RecordedTrace, TraceState};
use std::collections::BTreeMap;
use std::fmt;

/// Error from parsing or evaluating a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Malformed query text.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset of the problem.
        position: usize,
    },
    /// A `name(s)` referenced neither a place nor a transition.
    UnknownName(String),
    /// A state variable was used without being bound by a quantifier,
    /// comprehension, or `inev`.
    UnboundStateVariable(String),
    /// `#n` referenced a state beyond the trace.
    StateOutOfRange(usize),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { message, position } => {
                write!(f, "{message} at byte {position}")
            }
            QueryError::UnknownName(n) => {
                write!(f, "`{n}` is neither a place nor a transition of the trace")
            }
            QueryError::UnboundStateVariable(v) => write!(f, "unbound state variable `{v}`"),
            QueryError::StateOutOfRange(n) => write!(f, "state #{n} is beyond the trace"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Result of checking a query against a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Whether the query holds.
    pub holds: bool,
    /// For a satisfied `exists`: the first witness state index. For a
    /// violated `forall`: the first counterexample state index.
    pub witness: Option<usize>,
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum SetExpr {
    All,
    Minus(Box<SetExpr>, Vec<usize>),
    Comprehension {
        var: String,
        of: Box<SetExpr>,
        pred: Box<Formula>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Debug, Clone, PartialEq)]
enum Term {
    Int(i64),
    Count { name: String, state_var: String },
    Add(Box<Term>, Box<Term>),
    Sub(Box<Term>, Box<Term>),
    Mul(Box<Term>, Box<Term>),
}

#[derive(Debug, Clone, PartialEq)]
enum Formula {
    Bool(bool),
    Cmp(Term, CmpOp, Term),
    /// Bare `P(s)` meaning `P(s) > 0`.
    NonZero(Term),
    And(Box<Formula>, Box<Formula>),
    Or(Box<Formula>, Box<Formula>),
    Not(Box<Formula>),
    /// `inev(s, target, guard)`: along the trace from `s`, `guard`
    /// (with `C` bound to each intermediate state) holds until a state
    /// where `target` holds; false if the trace ends first.
    Inev {
        from: String,
        target: Box<Formula>,
        guard: Box<Formula>,
    },
}

/// A parsed query: a quantifier over a state set with a body formula.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    forall: bool,
    var: String,
    set: SetExpr,
    body: Formula,
}

impl Query {
    /// Parse a query from the paper's concrete syntax.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::Parse`] on malformed input.
    pub fn parse(src: &str) -> Result<Self, QueryError> {
        Parser::new(src)?.query()
    }

    /// Check the query against a trace.
    ///
    /// # Errors
    ///
    /// Returns name-resolution or range errors discovered during
    /// evaluation.
    pub fn check(&self, trace: &RecordedTrace) -> Result<QueryOutcome, QueryError> {
        let states: Vec<TraceState> = trace.states().collect();
        let ctx = Ctx {
            trace,
            states: &states,
        };
        let set = ctx.eval_set(&self.set)?;
        let mut bindings = BTreeMap::new();
        for idx in set {
            bindings.insert(self.var.clone(), idx);
            let sat = ctx.eval_formula(&self.body, &bindings)?;
            if self.forall && !sat {
                return Ok(QueryOutcome {
                    holds: false,
                    witness: Some(idx),
                });
            }
            if !self.forall && sat {
                return Ok(QueryOutcome {
                    holds: true,
                    witness: Some(idx),
                });
            }
        }
        Ok(QueryOutcome {
            holds: self.forall,
            witness: None,
        })
    }
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

struct Ctx<'a> {
    trace: &'a RecordedTrace,
    states: &'a [TraceState],
}

impl Ctx<'_> {
    fn eval_set(&self, set: &SetExpr) -> Result<Vec<usize>, QueryError> {
        match set {
            SetExpr::All => Ok((0..self.states.len()).collect()),
            SetExpr::Minus(of, removed) => {
                for &r in removed {
                    if r >= self.states.len() {
                        return Err(QueryError::StateOutOfRange(r));
                    }
                }
                Ok(self
                    .eval_set(of)?
                    .into_iter()
                    .filter(|i| !removed.contains(i))
                    .collect())
            }
            SetExpr::Comprehension { var, of, pred } => {
                let base = self.eval_set(of)?;
                let mut out = Vec::new();
                let mut bindings = BTreeMap::new();
                for idx in base {
                    bindings.insert(var.clone(), idx);
                    if self.eval_formula(pred, &bindings)? {
                        out.push(idx);
                    }
                }
                Ok(out)
            }
        }
    }

    fn count(&self, name: &str, state: usize) -> Result<i64, QueryError> {
        let header = self.trace.header();
        let s = &self.states[state];
        if let Some(p) = header.place_id(name) {
            return Ok(i64::from(s.marking.tokens(p)));
        }
        if let Some(t) = header.transition_id(name) {
            return Ok(i64::from(s.firing_counts[t.index()]));
        }
        Err(QueryError::UnknownName(name.to_string()))
    }

    fn eval_term(
        &self,
        term: &Term,
        bindings: &BTreeMap<String, usize>,
    ) -> Result<i64, QueryError> {
        match term {
            Term::Int(v) => Ok(*v),
            Term::Count { name, state_var } => {
                let idx = *bindings
                    .get(state_var)
                    .ok_or_else(|| QueryError::UnboundStateVariable(state_var.clone()))?;
                self.count(name, idx)
            }
            Term::Add(a, b) => Ok(self.eval_term(a, bindings)? + self.eval_term(b, bindings)?),
            Term::Sub(a, b) => Ok(self.eval_term(a, bindings)? - self.eval_term(b, bindings)?),
            Term::Mul(a, b) => Ok(self.eval_term(a, bindings)? * self.eval_term(b, bindings)?),
        }
    }

    fn eval_formula(
        &self,
        formula: &Formula,
        bindings: &BTreeMap<String, usize>,
    ) -> Result<bool, QueryError> {
        match formula {
            Formula::Bool(b) => Ok(*b),
            Formula::NonZero(t) => Ok(self.eval_term(t, bindings)? > 0),
            Formula::Cmp(a, op, b) => {
                let x = self.eval_term(a, bindings)?;
                let y = self.eval_term(b, bindings)?;
                Ok(match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                })
            }
            Formula::And(a, b) => {
                Ok(self.eval_formula(a, bindings)? && self.eval_formula(b, bindings)?)
            }
            Formula::Or(a, b) => {
                Ok(self.eval_formula(a, bindings)? || self.eval_formula(b, bindings)?)
            }
            Formula::Not(a) => Ok(!self.eval_formula(a, bindings)?),
            Formula::Inev {
                from,
                target,
                guard,
            } => {
                let start = *bindings
                    .get(from)
                    .ok_or_else(|| QueryError::UnboundStateVariable(from.clone()))?;
                let mut inner = bindings.clone();
                for k in start..self.states.len() {
                    inner.insert("C".to_string(), k);
                    if self.eval_formula(target, &inner)? {
                        return Ok(true);
                    }
                    if !self.eval_formula(guard, &inner)? {
                        return Ok(false);
                    }
                }
                Ok(false)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Hash,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Pipe,
    Plus,
    Minus,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, QueryError> {
        let mut toks = Vec::new();
        let bytes = src.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let pos = i;
            let c = bytes[i] as char;
            match c {
                ' ' | '\t' | '\n' | '\r' => i += 1,
                '#' => {
                    toks.push((Tok::Hash, pos));
                    i += 1;
                }
                '(' => {
                    toks.push((Tok::LParen, pos));
                    i += 1;
                }
                ')' => {
                    toks.push((Tok::RParen, pos));
                    i += 1;
                }
                '[' => {
                    toks.push((Tok::LBracket, pos));
                    i += 1;
                }
                ']' => {
                    toks.push((Tok::RBracket, pos));
                    i += 1;
                }
                '{' => {
                    toks.push((Tok::LBrace, pos));
                    i += 1;
                }
                '}' => {
                    toks.push((Tok::RBrace, pos));
                    i += 1;
                }
                ',' => {
                    toks.push((Tok::Comma, pos));
                    i += 1;
                }
                '|' => {
                    toks.push((Tok::Pipe, pos));
                    i += 1;
                }
                '+' => {
                    toks.push((Tok::Plus, pos));
                    i += 1;
                }
                '-' => {
                    toks.push((Tok::Minus, pos));
                    i += 1;
                }
                '*' => {
                    toks.push((Tok::Star, pos));
                    i += 1;
                }
                '=' => {
                    // Paper writes single `=`; accept `==` too.
                    i += if bytes.get(i + 1) == Some(&b'=') {
                        2
                    } else {
                        1
                    };
                    toks.push((Tok::Eq, pos));
                }
                '!' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        toks.push((Tok::Ne, pos));
                        i += 2;
                    } else {
                        return Err(QueryError::Parse {
                            message: "expected `!=`".into(),
                            position: pos,
                        });
                    }
                }
                '<' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        toks.push((Tok::Le, pos));
                        i += 2;
                    } else {
                        toks.push((Tok::Lt, pos));
                        i += 1;
                    }
                }
                '>' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        toks.push((Tok::Ge, pos));
                        i += 2;
                    } else {
                        toks.push((Tok::Gt, pos));
                        i += 1;
                    }
                }
                '0'..='9' => {
                    let start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v = src[start..i].parse().map_err(|_| QueryError::Parse {
                        message: "integer out of range".into(),
                        position: start,
                    })?;
                    toks.push((Tok::Int(v), pos));
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric()
                            || bytes[i] == b'_'
                            || bytes[i] == b'\'')
                    {
                        i += 1;
                    }
                    toks.push((Tok::Ident(src[start..i].to_string()), pos));
                }
                other => {
                    return Err(QueryError::Parse {
                        message: format!("unexpected character `{other}`"),
                        position: pos,
                    });
                }
            }
        }
        Ok(Parser { toks, pos: 0 })
    }

    fn err(&self, message: &str) -> QueryError {
        QueryError::Parse {
            message: message.to_string(),
            position: self
                .toks
                .get(self.pos)
                .map(|&(_, p)| p)
                .unwrap_or_else(|| self.toks.last().map(|&(_, p)| p + 1).unwrap_or(0)),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), QueryError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(&format!("expected `{kw}`"))),
        }
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        let forall = match self.peek() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("forall") => true,
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("exists") => false,
            _ => return Err(self.err("expected `forall` or `exists`")),
        };
        self.pos += 1;
        let var = self.ident()?;
        self.keyword("in")?;
        let set = self.set_expr()?;
        self.expect(&Tok::LBracket, "`[`")?;
        let body = self.formula()?;
        self.expect(&Tok::RBracket, "`]`")?;
        if self.pos != self.toks.len() {
            return Err(self.err("unexpected trailing input"));
        }
        Ok(Query {
            forall,
            var,
            set,
            body,
        })
    }

    fn set_expr(&mut self) -> Result<SetExpr, QueryError> {
        let mut base = self.primary_set()?;
        while self.eat(&Tok::Minus) {
            self.expect(&Tok::LBrace, "`{`")?;
            let mut removed = Vec::new();
            loop {
                self.expect(&Tok::Hash, "`#`")?;
                match self.peek().cloned() {
                    Some(Tok::Int(v)) if v >= 0 => {
                        self.pos += 1;
                        removed.push(v as usize);
                    }
                    _ => return Err(self.err("expected state number after `#`")),
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBrace, "`}`")?;
            base = SetExpr::Minus(Box::new(base), removed);
        }
        Ok(base)
    }

    fn primary_set(&mut self) -> Result<SetExpr, QueryError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) if s == "S" => {
                self.pos += 1;
                Ok(SetExpr::All)
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.set_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(inner)
            }
            Some(Tok::LBrace) => {
                self.pos += 1;
                let var = self.ident()?;
                self.keyword("in")?;
                let of = self.set_expr()?;
                self.expect(&Tok::Pipe, "`|`")?;
                let pred = self.formula()?;
                self.expect(&Tok::RBrace, "`}`")?;
                Ok(SetExpr::Comprehension {
                    var,
                    of: Box::new(of),
                    pred: Box::new(pred),
                })
            }
            _ => Err(self.err("expected a state set (`S`, `(...)`, or `{v in S | ...}`)")),
        }
    }

    fn formula(&mut self) -> Result<Formula, QueryError> {
        let mut lhs = self.conjunct()?;
        loop {
            match self.peek() {
                Some(Tok::Ident(s)) if s == "or" => {
                    self.pos += 1;
                    let rhs = self.conjunct()?;
                    lhs = Formula::Or(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn conjunct(&mut self) -> Result<Formula, QueryError> {
        let mut lhs = self.atom()?;
        loop {
            match self.peek() {
                Some(Tok::Ident(s)) if s == "and" => {
                    self.pos += 1;
                    let rhs = self.atom()?;
                    lhs = Formula::And(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<Formula, QueryError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) if s == "not" => {
                self.pos += 1;
                Ok(Formula::Not(Box::new(self.atom()?)))
            }
            Some(Tok::Ident(s)) if s == "true" => {
                self.pos += 1;
                Ok(Formula::Bool(true))
            }
            Some(Tok::Ident(s)) if s == "false" => {
                self.pos += 1;
                Ok(Formula::Bool(false))
            }
            Some(Tok::Ident(s)) if s == "inev" => {
                self.pos += 1;
                self.expect(&Tok::LParen, "`(`")?;
                let from = self.ident()?;
                self.expect(&Tok::Comma, "`,`")?;
                let target = self.formula()?;
                self.expect(&Tok::Comma, "`,`")?;
                let guard = self.formula()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(Formula::Inev {
                    from,
                    target: Box::new(target),
                    guard: Box::new(guard),
                })
            }
            Some(Tok::LParen) => {
                // Could be a parenthesized formula or a parenthesized
                // term beginning a comparison; backtrack on failure.
                let save = self.pos;
                self.pos += 1;
                if let Ok(inner) = self.formula() {
                    if self.eat(&Tok::RParen) && !self.peek_is_relop_or_arith() {
                        return Ok(inner);
                    }
                }
                self.pos = save;
                self.comparison()
            }
            _ => self.comparison(),
        }
    }

    fn peek_is_relop_or_arith(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                Tok::Eq
                    | Tok::Ne
                    | Tok::Lt
                    | Tok::Le
                    | Tok::Gt
                    | Tok::Ge
                    | Tok::Plus
                    | Tok::Minus
                    | Tok::Star
            )
        )
    }

    fn comparison(&mut self) -> Result<Formula, QueryError> {
        let lhs = self.term()?;
        let op = match self.peek() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            // Bare `P(s)` means `P(s) > 0` (paper's comprehension form).
            _ => return Ok(Formula::NonZero(lhs)),
        };
        self.pos += 1;
        let rhs = self.term()?;
        Ok(Formula::Cmp(lhs, op, rhs))
    }

    fn term(&mut self) -> Result<Term, QueryError> {
        let mut lhs = self.factor()?;
        loop {
            if self.eat(&Tok::Plus) {
                let rhs = self.factor()?;
                lhs = Term::Add(Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Tok::Minus) {
                let rhs = self.factor()?;
                lhs = Term::Sub(Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Term, QueryError> {
        let mut lhs = self.term_primary()?;
        while self.eat(&Tok::Star) {
            let rhs = self.term_primary()?;
            lhs = Term::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term_primary(&mut self) -> Result<Term, QueryError> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Term::Int(v))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let t = self.term()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(t)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                self.expect(&Tok::LParen, "`(` after place/transition name")?;
                let state_var = self.ident()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(Term::Count { name, state_var })
            }
            _ => Err(self.err("expected a term")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::{NetBuilder, Time};

    /// Bus that alternates free(3)/busy(2); buffer drains then refills.
    fn sample_trace() -> RecordedTrace {
        let mut b = NetBuilder::new("n");
        b.place("Bus_free", 1);
        b.place("Bus_busy", 0);
        b.transition("seize")
            .input("Bus_free")
            .output("Bus_busy")
            .enabling(3)
            .add();
        b.transition("release")
            .input("Bus_busy")
            .output("Bus_free")
            .enabling(2)
            .add();
        let net = b.build().unwrap();
        pnut_sim::simulate(&net, 0, Time::from_ticks(50)).unwrap()
    }

    fn check(q: &str, trace: &RecordedTrace) -> QueryOutcome {
        Query::parse(q).unwrap().check(trace).unwrap()
    }

    #[test]
    fn paper_query_bus_invariant() {
        let t = sample_trace();
        let o = check("forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]", &t);
        assert!(o.holds);
        assert!(o.witness.is_none());
    }

    #[test]
    fn violated_forall_returns_counterexample() {
        let t = sample_trace();
        let o = check("forall s in S [ Bus_busy(s) = 1 ]", &t);
        assert!(!o.holds);
        assert_eq!(o.witness, Some(0), "initial state has the bus free");
    }

    #[test]
    fn exists_with_set_difference() {
        let t = sample_trace();
        // Bus is free initially; excluding #0, is it ever free again?
        let o = check("exists s in (S - {#0}) [ Bus_free(s) = 1 ]", &t);
        assert!(o.holds);
        assert!(o.witness.is_some());
        // Remove enough states and check out-of-range detection.
        let q = Query::parse("exists s in (S - {#999999}) [ Bus_free(s) = 1 ]").unwrap();
        assert_eq!(
            q.check(&t).unwrap_err(),
            QueryError::StateOutOfRange(999999)
        );
    }

    #[test]
    fn paper_query_inevitability() {
        let t = sample_trace();
        let o = check(
            "forall s in {s' in S | Bus_busy(s')} [ inev(s, Bus_free(C), true) ]",
            &t,
        );
        // The final busy episode may extend past the horizon, in which
        // case the bus is never observed free again; either way the
        // query must evaluate without error. Check a strictly true one:
        let o2 = check(
            "forall s in {s' in S | Bus_free(s')} [ inev(s, Bus_free(C), true) ]",
            &t,
        );
        assert!(o2.holds, "a free state trivially reaches a free state");
        let _ = o;
    }

    #[test]
    fn inev_guard_can_fail() {
        let t = sample_trace();
        // From the initial (free) state, "busy is inevitable while the
        // bus stays busy" is false: the guard fails immediately.
        let o = check(
            "forall s in {s' in S | Bus_free(s')} [ inev(s, false, Bus_busy(C)) ]",
            &t,
        );
        assert!(!o.holds);
    }

    #[test]
    fn inev_can_reference_outer_binding_and_current_state() {
        let t = sample_trace();
        // From every busy state s, eventually the current state differs
        // from s on Bus_free (i.e. the bus is freed relative to s).
        let o = check(
            "forall s in {s' in S | Bus_busy(s')} \
             [ inev(s, Bus_free(C) > Bus_free(s), true) or true ]",
            &t,
        );
        assert!(o.holds, "mixed bindings evaluate without error");
    }

    #[test]
    fn transition_counts_are_queryable() {
        let t = sample_trace();
        // seize/release are enabling-time transitions: zero-width firing
        // pulses; never observed mid-firing.
        let o = check("exists s in S [ seize(s) > 0 ]", &t);
        assert!(!o.holds);
    }

    #[test]
    fn comprehension_filters() {
        let t = sample_trace();
        let o = check(
            "forall s in {s' in S | Bus_busy(s')} [ Bus_free(s) = 0 ]",
            &t,
        );
        assert!(o.holds);
    }

    #[test]
    fn arithmetic_in_terms() {
        let t = sample_trace();
        let o = check(
            "forall s in S [ 2 * Bus_busy(s) + 2 * Bus_free(s) = 1 + 1 ]",
            &t,
        );
        assert!(o.holds);
        let o = check("forall s in S [ Bus_free(s) - Bus_busy(s) <= 1 ]", &t);
        assert!(o.holds);
    }

    #[test]
    fn boolean_connectives() {
        let t = sample_trace();
        let o = check("forall s in S [ Bus_busy(s) = 1 or Bus_free(s) = 1 ]", &t);
        assert!(o.holds);
        let o = check(
            "forall s in S [ not (Bus_busy(s) = 1 and Bus_free(s) = 1) ]",
            &t,
        );
        assert!(o.holds);
    }

    #[test]
    fn unknown_names_and_unbound_vars_error() {
        let t = sample_trace();
        let q = Query::parse("exists s in S [ Nothing(s) > 0 ]").unwrap();
        assert_eq!(
            q.check(&t).unwrap_err(),
            QueryError::UnknownName("Nothing".into())
        );
        let q = Query::parse("exists s in S [ Bus_free(zz) > 0 ]").unwrap();
        assert_eq!(
            q.check(&t).unwrap_err(),
            QueryError::UnboundStateVariable("zz".into())
        );
    }

    #[test]
    fn parse_errors_are_located() {
        for bad in [
            "forall s in S [ ]",
            "exists s in [ true ]",
            "forall s S [ true ]",
            "forall s in S [ true ] extra",
            "sometimes s in S [ true ]",
            "forall s in (S - {0}) [ true ]",
        ] {
            assert!(
                matches!(Query::parse(bad), Err(QueryError::Parse { .. })),
                "should fail: {bad}"
            );
        }
    }

    #[test]
    fn primed_variables_parse() {
        let q = Query::parse("forall s in {s' in S | Bus_busy(s')} [ true ]");
        assert!(q.is_ok());
    }
}
