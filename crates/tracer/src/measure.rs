//! Timing measurements over traces.
//!
//! Markers (Figure 7) measure one interval by hand; this module measures
//! *populations*: pulse widths and duty cycles of a signal (how long is
//! the bus held per acquisition?), inter-firing intervals of a
//! transition (how regular is instruction issue?), and start-to-start
//! latencies between two transitions (how long from decode to issue?) —
//! the questions a systems engineer asks of a logic-state analyzer
//! (§4.4).

use pnut_core::{Time, TransitionId};
use pnut_trace::{DeltaKind, RecordedTrace};
use std::fmt;

/// One contiguous episode during which a signal was non-zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pulse {
    /// When the signal became non-zero.
    pub start: Time,
    /// When it returned to zero (exclusive); open pulses at the end of
    /// the trace are closed at the trace end time.
    pub end: Time,
}

impl Pulse {
    /// Pulse width in ticks.
    pub fn width(&self) -> u64 {
        self.end.ticks() - self.start.ticks()
    }
}

/// Aggregate statistics over a pulse population.
#[derive(Debug, Clone, PartialEq)]
pub struct PulseStats {
    /// Individual pulses in time order.
    pub pulses: Vec<Pulse>,
    /// Fraction of the observation window the signal was non-zero.
    pub duty_cycle: f64,
}

impl PulseStats {
    /// Number of pulses.
    pub fn count(&self) -> usize {
        self.pulses.len()
    }

    /// Mean pulse width in ticks (0 if there are no pulses).
    pub fn mean_width(&self) -> f64 {
        if self.pulses.is_empty() {
            0.0
        } else {
            self.pulses.iter().map(|p| p.width() as f64).sum::<f64>() / self.pulses.len() as f64
        }
    }

    /// Minimum pulse width.
    pub fn min_width(&self) -> Option<u64> {
        self.pulses.iter().map(Pulse::width).min()
    }

    /// Maximum pulse width.
    pub fn max_width(&self) -> Option<u64> {
        self.pulses.iter().map(Pulse::width).max()
    }
}

impl fmt::Display for PulseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pulses, widths {}..{} (mean {:.2}), duty cycle {:.1}%",
            self.count(),
            self.min_width().unwrap_or(0),
            self.max_width().unwrap_or(0),
            self.mean_width(),
            self.duty_cycle * 100.0
        )
    }
}

/// Measure the pulses of a place's token count (non-zero episodes) over
/// the whole trace.
///
/// Returns `None` if the place name is unknown.
pub fn place_pulses(trace: &RecordedTrace, place: &str) -> Option<PulseStats> {
    let pid = trace.header().place_id(place)?;
    let mut pulses = Vec::new();
    let mut high_since: Option<Time> = None;
    let mut last_time = trace.header().start_time;
    for state in trace.states() {
        let v = state.marking.tokens(pid);
        match (high_since, v > 0) {
            (None, true) => high_since = Some(state.time),
            (Some(s), false) => {
                pulses.push(Pulse {
                    start: s,
                    end: state.time,
                });
                high_since = None;
            }
            _ => {}
        }
        last_time = state.time;
    }
    let end = trace.end_time().max(last_time);
    if let Some(s) = high_since {
        pulses.push(Pulse { start: s, end });
    }
    let window = end
        .ticks()
        .saturating_sub(trace.header().start_time.ticks());
    let high: u64 = pulses.iter().map(Pulse::width).sum();
    Some(PulseStats {
        pulses,
        duty_cycle: if window > 0 {
            high as f64 / window as f64
        } else {
            0.0
        },
    })
}

/// The start times of every firing of `transition`, in order.
pub fn start_times(trace: &RecordedTrace, transition: &str) -> Option<Vec<Time>> {
    let tid: TransitionId = trace.header().transition_id(transition)?;
    Some(
        trace
            .deltas()
            .iter()
            .filter_map(|d| match d.kind {
                DeltaKind::Start { transition: t, .. } if t == tid => Some(d.time),
                _ => None,
            })
            .collect(),
    )
}

/// Intervals between successive starts of `transition` — the
/// "instruction issue period" distribution.
pub fn inter_start_intervals(trace: &RecordedTrace, transition: &str) -> Option<Vec<u64>> {
    let times = start_times(trace, transition)?;
    Some(
        times
            .windows(2)
            .map(|w| w[1].ticks() - w[0].ticks())
            .collect(),
    )
}

/// Start-to-start latency: for each firing of `from`, the delay until
/// the next start of `to` at or after it. Unmatched trailing firings are
/// dropped.
pub fn latencies(trace: &RecordedTrace, from: &str, to: &str) -> Option<Vec<u64>> {
    let froms = start_times(trace, from)?;
    let tos = start_times(trace, to)?;
    let mut out = Vec::new();
    let mut j = 0;
    for f in froms {
        while j < tos.len() && tos[j] < f {
            j += 1;
        }
        if j == tos.len() {
            break;
        }
        out.push(tos[j].ticks() - f.ticks());
        j += 1;
    }
    Some(out)
}

/// A fixed-bucket histogram of tick intervals, with text rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket width in ticks.
    pub bucket_width: u64,
    /// Counts per bucket; bucket `i` covers
    /// `[i*bucket_width, (i+1)*bucket_width)`.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub samples: u64,
}

impl Histogram {
    /// Build from samples with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero.
    pub fn new(samples: &[u64], bucket_width: u64) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        let max = samples.iter().copied().max().unwrap_or(0);
        let mut buckets = vec![0u64; (max / bucket_width + 1) as usize];
        for &s in samples {
            buckets[(s / bucket_width) as usize] += 1;
        }
        Histogram {
            bucket_width,
            buckets,
            samples: samples.len() as u64,
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        for (i, &count) in self.buckets.iter().enumerate() {
            let lo = i as u64 * self.bucket_width;
            let hi = lo + self.bucket_width - 1;
            let bar = "#".repeat(((count * 40) / peak) as usize);
            writeln!(f, "{lo:>6}-{hi:<6} {count:>6} {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::NetBuilder;

    fn bus_trace() -> RecordedTrace {
        // Busy 3..5, 8..10, ... period 5, width 2.
        let mut b = NetBuilder::new("bus");
        b.place("Bus_free", 1);
        b.place("Bus_busy", 0);
        b.transition("seize")
            .input("Bus_free")
            .output("Bus_busy")
            .enabling(3)
            .add();
        b.transition("release")
            .input("Bus_busy")
            .output("Bus_free")
            .enabling(2)
            .add();
        let net = b.build().unwrap();
        pnut_sim::simulate(&net, 0, Time::from_ticks(50)).unwrap()
    }

    #[test]
    fn pulse_widths_and_duty_cycle() {
        let t = bus_trace();
        let stats = place_pulses(&t, "Bus_busy").unwrap();
        assert!(stats.count() >= 9);
        assert_eq!(stats.min_width(), Some(2));
        assert_eq!(stats.max_width(), Some(2));
        assert!((stats.mean_width() - 2.0).abs() < 1e-12);
        assert!((stats.duty_cycle - 0.4).abs() < 0.05, "2 of every 5 ticks");
        let shown = stats.to_string();
        assert!(shown.contains("pulses"));
        assert!(place_pulses(&t, "nope").is_none());
    }

    #[test]
    fn open_pulse_closed_at_trace_end() {
        // One-shot: busy from 3 to end of trace.
        let mut b = NetBuilder::new("once");
        b.place("idle", 1);
        b.place("busy", 0);
        b.transition("go")
            .input("idle")
            .output("busy")
            .enabling(3)
            .add();
        let net = b.build().unwrap();
        let t = pnut_sim::simulate(&net, 0, Time::from_ticks(10)).unwrap();
        let stats = place_pulses(&t, "busy").unwrap();
        assert_eq!(stats.count(), 1);
        assert_eq!(stats.pulses[0].width(), 7, "3..10");
    }

    #[test]
    fn inter_start_intervals_are_the_period() {
        let t = bus_trace();
        let intervals = inter_start_intervals(&t, "seize").unwrap();
        assert!(!intervals.is_empty());
        assert!(
            intervals.iter().all(|&i| i == 5),
            "period 3+2: {intervals:?}"
        );
        assert!(inter_start_intervals(&t, "ghost").is_none());
    }

    #[test]
    fn latencies_match_enabling_delay() {
        let t = bus_trace();
        // From each seize, the next release starts 2 ticks later.
        let lat = latencies(&t, "seize", "release").unwrap();
        assert!(!lat.is_empty());
        assert!(lat.iter().all(|&l| l == 2), "{lat:?}");
        // Reverse direction: release -> next seize is 3 ticks.
        let rev = latencies(&t, "release", "seize").unwrap();
        assert!(rev.iter().all(|&l| l == 3), "{rev:?}");
    }

    #[test]
    fn histogram_buckets_and_render() {
        let h = Histogram::new(&[1, 2, 2, 7, 12], 5);
        assert_eq!(h.buckets, vec![3, 1, 1]);
        assert_eq!(h.samples, 5);
        let shown = h.to_string();
        assert!(shown.contains("0-4"));
        assert!(shown.contains('#'));
        let empty = Histogram::new(&[], 5);
        assert_eq!(empty.samples, 0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_width_panics() {
        let _ = Histogram::new(&[1], 0);
    }
}
