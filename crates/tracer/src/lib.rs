#![forbid(unsafe_code)]

//! # pnut-tracer — timing analysis and trace verification
//!
//! Reproduction of the P-NUT *tracertool* (paper §4.4), which plays two
//! roles:
//!
//! 1. **Software logic state analyzer** ([`timeline`]): "Probes are
//!    placed at relevant inputs ... and the resulting timing traces are
//!    examined." Any places or transitions can be plotted over time, and
//!    arbitrary functions of them can be defined — the module reuses the
//!    core expression language, treating each place name as its token
//!    count and each transition name as its concurrent-firing count.
//!    Markers can be positioned and the tool measures the interval
//!    between them (the `O <-> X 48` readout of Figure 7).
//!
//! 2. **Trace verification** ([`query`]): high-level specifications in
//!    first-order predicate calculus over the states of a trace, with
//!    the temporal operator `inev` — used to *test* (not prove)
//!    correctness of a simulation run. The concrete syntax follows the
//!    paper:
//!
//!    ```text
//!    forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]
//!    exists s in (S - {#0}) [ Empty_I_buffers(s) = 6 ]
//!    forall s in {s' in S | Bus_busy(s')} [ inev(s, Bus_free(C), true) ]
//!    ```
//!
//! # Example
//!
//! ```
//! use pnut_core::{NetBuilder, Time};
//! use pnut_tracer::query::Query;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetBuilder::new("bus");
//! b.place("Bus_free", 1);
//! b.place("Bus_busy", 0);
//! b.transition("seize").input("Bus_free").output("Bus_busy").enabling(1).add();
//! b.transition("release").input("Bus_busy").output("Bus_free").enabling(2).add();
//! let net = b.build()?;
//! let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(50))?;
//!
//! let q = Query::parse("forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]")?;
//! assert!(q.check(&trace)?.holds);
//! # Ok(())
//! # }
//! ```

pub mod measure;
pub mod query;
pub mod timeline;

pub use measure::{Histogram, Pulse, PulseStats};
pub use query::{Query, QueryError, QueryOutcome};
pub use timeline::{Marker, Signal, Timeline, TimelineError};
