//! The software logic state analyzer (Figure 7).

use pnut_core::expr::{Env, Expr, Value};
use pnut_core::Time;
use pnut_trace::RecordedTrace;
use std::fmt;

/// A probe: a named quantity plotted over time.
///
/// The expression is evaluated in an environment where every *place*
/// name is bound to its token count and every *transition* name to its
/// concurrent-firing count, so `Signal::function` supports the paper's
/// "arbitrary functions on places and transitions" (e.g. summing the
/// activity of all execution transitions).
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    /// Row label in the rendered timeline.
    pub label: String,
    expr: Expr,
}

impl Signal {
    /// Probe a place's token count.
    pub fn place(name: impl Into<String>) -> Self {
        let name = name.into();
        Signal {
            expr: Expr::var(&name),
            label: name,
        }
    }

    /// Probe a transition's concurrent-firing count.
    pub fn transition(name: impl Into<String>) -> Self {
        // Same binding space; the distinction is only documentation.
        Self::place(name)
    }

    /// Probe a user-defined function of places and transitions.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed source text.
    pub fn function(
        label: impl Into<String>,
        src: &str,
    ) -> Result<Self, pnut_core::ParseExprError> {
        Ok(Signal {
            label: label.into(),
            expr: Expr::parse(src)?,
        })
    }
}

/// A marker positioned at a time, labeled with a single character
/// (Figure 7 uses `O` and `X`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Marker {
    /// Where the marker sits.
    pub time: Time,
    /// The character drawn on the marker row.
    pub tag: char,
}

/// Error from timeline construction.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineError {
    /// A signal expression referenced a name that is neither a place nor
    /// a transition of the trace (nor an initial-environment variable).
    UnknownName {
        /// The signal whose expression failed.
        signal: String,
        /// The evaluation failure.
        source: pnut_core::EvalError,
    },
    /// An empty time window (`from >= to`).
    EmptyWindow {
        /// Window start.
        from: Time,
        /// Window end.
        to: Time,
    },
}

impl fmt::Display for TimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimelineError::UnknownName { signal, source } => {
                write!(f, "signal `{signal}` failed to evaluate: {source}")
            }
            TimelineError::EmptyWindow { from, to } => {
                write!(f, "empty timeline window [{from}, {to})")
            }
        }
    }
}

impl std::error::Error for TimelineError {}

/// A sampled set of signals over a time window, with rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    from: Time,
    to: Time,
    labels: Vec<String>,
    /// Per signal, one value per tick in `[from, to)`.
    samples: Vec<Vec<i64>>,
    markers: Vec<Marker>,
}

impl Timeline {
    /// Sample `signals` over `[from, to)` (one sample per tick, using
    /// the last state at or before each tick).
    ///
    /// # Errors
    ///
    /// Returns [`TimelineError::EmptyWindow`] for an empty window or
    /// [`TimelineError::UnknownName`] if a signal references an unknown
    /// name.
    pub fn sample(
        trace: &RecordedTrace,
        signals: &[Signal],
        from: Time,
        to: Time,
    ) -> Result<Self, TimelineError> {
        if from >= to {
            return Err(TimelineError::EmptyWindow { from, to });
        }
        let header = trace.header();
        let ticks = (to.ticks() - from.ticks()) as usize;
        let mut samples = vec![Vec::with_capacity(ticks); signals.len()];

        // Walk states and ticks in lockstep; for each tick take the value
        // from the last state entered at or before that tick.
        let mut states = trace.states().peekable();
        let mut current = states
            .next()
            .expect("states always yields the initial state");
        let mut env_cache = bind_env(&current, header);
        for tick in from.ticks()..to.ticks() {
            while let Some(next) = states.peek() {
                if next.time.ticks() <= tick {
                    current = states.next().expect("peeked");
                    env_cache = bind_env(&current, header);
                } else {
                    break;
                }
            }
            for (i, sig) in signals.iter().enumerate() {
                let v = sig
                    .expr
                    .eval_pure(&env_cache)
                    .and_then(Value::as_int)
                    .map_err(|source| TimelineError::UnknownName {
                        signal: sig.label.clone(),
                        source,
                    })?;
                samples[i].push(v);
            }
        }
        Ok(Timeline {
            from,
            to,
            labels: signals.iter().map(|s| s.label.clone()).collect(),
            samples,
            markers: Vec::new(),
        })
    }

    /// Place a marker (Figure 7's `O` / `X`).
    pub fn add_marker(&mut self, marker: Marker) {
        self.markers.push(marker);
    }

    /// Tick distance between the markers tagged `a` and `b` — the
    /// Figure 7 `O <-> X` readout. `None` if either marker is absent.
    pub fn interval(&self, a: char, b: char) -> Option<u64> {
        let find = |tag| {
            self.markers
                .iter()
                .find(|m| m.tag == tag)
                .map(|m| m.time.ticks())
        };
        let ta = find(a)?;
        let tb = find(b)?;
        Some(ta.abs_diff(tb))
    }

    /// The sampled values of the signal at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[i64] {
        &self.samples[row]
    }

    /// Number of signal rows.
    pub fn rows(&self) -> usize {
        self.samples.len()
    }

    /// Window start.
    pub fn from(&self) -> Time {
        self.from
    }

    /// Window end (exclusive).
    pub fn to(&self) -> Time {
        self.to
    }
}

fn bind_env(state: &pnut_trace::TraceState, header: &pnut_trace::TraceHeader) -> Env {
    // Place and transition counts shadow initial variables of the same
    // name; start from the state's variable environment so user-defined
    // signals can also reference model variables.
    let mut env = state.env.clone();
    for (i, name) in header.place_names.iter().enumerate() {
        env.set_var(
            name.clone(),
            Value::Int(i64::from(state.marking.tokens(pnut_core::PlaceId::new(i)))),
        );
    }
    for (i, name) in header.transition_names.iter().enumerate() {
        env.set_var(name.clone(), Value::Int(i64::from(state.firing_counts[i])));
    }
    env
}

impl fmt::Display for Timeline {
    /// Render the logic-analyzer view: one row per signal, one column
    /// per tick. Binary signals render as `_` (0) and `█` (≥1);
    /// wider-range signals render digits (`+` above 9). A time axis and
    /// marker row follow the signals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .labels
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(8);
        for (label, row) in self.labels.iter().zip(&self.samples) {
            let max = row.iter().copied().max().unwrap_or(0);
            write!(f, "{label:>width$} ")?;
            for &v in row {
                let c = if max <= 1 {
                    if v >= 1 {
                        '█'
                    } else {
                        '_'
                    }
                } else {
                    match v {
                        0 => '.',
                        1..=9 => char::from(b'0' + v as u8),
                        _ => '+',
                    }
                };
                write!(f, "{c}")?;
            }
            writeln!(f)?;
        }
        // Marker row.
        if !self.markers.is_empty() {
            write!(f, "{:>width$} ", "markers")?;
            let ticks = (self.to.ticks() - self.from.ticks()) as usize;
            let mut row = vec![' '; ticks];
            for m in &self.markers {
                let t = m.time.ticks();
                if t >= self.from.ticks() && t < self.to.ticks() {
                    row[(t - self.from.ticks()) as usize] = m.tag;
                }
            }
            for c in row {
                write!(f, "{c}")?;
            }
            writeln!(f)?;
        }
        // Time axis: a tick mark every 10.
        write!(f, "{:>width$} ", "t")?;
        for t in self.from.ticks()..self.to.ticks() {
            write!(f, "{}", if t % 10 == 0 { '|' } else { ' ' })?;
        }
        writeln!(f)?;
        write!(f, "{:>width$} ", "")?;
        let mut t = self.from.ticks();
        while t < self.to.ticks() {
            if t.is_multiple_of(10) {
                let s = t.to_string();
                write!(f, "{s}")?;
                // Skip the columns the label consumed.
                t += s.len() as u64;
            } else {
                write!(f, " ")?;
                t += 1;
            }
        }
        writeln!(f)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::NetBuilder;

    fn bus_trace() -> RecordedTrace {
        let mut b = NetBuilder::new("bus");
        b.place("Bus_free", 1);
        b.place("Bus_busy", 0);
        b.transition("seize")
            .input("Bus_free")
            .output("Bus_busy")
            .enabling(3)
            .add();
        b.transition("release")
            .input("Bus_busy")
            .output("Bus_free")
            .enabling(2)
            .add();
        let net = b.build().unwrap();
        pnut_sim::simulate(&net, 0, Time::from_ticks(40)).unwrap()
    }

    #[test]
    fn samples_follow_state_changes() {
        let trace = bus_trace();
        let tl = Timeline::sample(
            &trace,
            &[Signal::place("Bus_busy")],
            Time::ZERO,
            Time::from_ticks(10),
        )
        .unwrap();
        // Free 0..3, busy 3..5, free 5..8, busy 8..10.
        assert_eq!(tl.row(0), &[0, 0, 0, 1, 1, 0, 0, 0, 1, 1]);
    }

    #[test]
    fn function_signals_combine_probes() {
        let trace = bus_trace();
        let sig = Signal::function("sum", "Bus_busy + Bus_free").unwrap();
        let tl = Timeline::sample(&trace, &[sig], Time::ZERO, Time::from_ticks(20)).unwrap();
        assert!(tl.row(0).iter().all(|&v| v == 1), "invariant sum == 1");
    }

    #[test]
    fn transition_probe_counts_concurrent_firings() {
        let mut b = NetBuilder::new("n");
        b.place("q", 2);
        b.place("done", 0);
        b.transition("serve")
            .input("q")
            .output("done")
            .firing(5)
            .add();
        let net = b.build().unwrap();
        let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(10)).unwrap();
        let tl = Timeline::sample(
            &trace,
            &[Signal::transition("serve")],
            Time::ZERO,
            Time::from_ticks(8),
        )
        .unwrap();
        assert_eq!(tl.row(0)[0], 2, "both firings in flight from t=0");
        assert_eq!(tl.row(0)[6], 0, "both finished at t=5");
    }

    #[test]
    fn unknown_names_error() {
        let trace = bus_trace();
        let sig = Signal::function("bad", "No_such_place + 1").unwrap();
        let e = Timeline::sample(&trace, &[sig], Time::ZERO, Time::from_ticks(5)).unwrap_err();
        assert!(matches!(e, TimelineError::UnknownName { .. }));
    }

    #[test]
    fn empty_window_rejected() {
        let trace = bus_trace();
        let e = Timeline::sample(
            &trace,
            &[Signal::place("Bus_busy")],
            Time::from_ticks(5),
            Time::from_ticks(5),
        )
        .unwrap_err();
        assert!(matches!(e, TimelineError::EmptyWindow { .. }));
    }

    #[test]
    fn markers_and_interval() {
        let trace = bus_trace();
        let mut tl = Timeline::sample(
            &trace,
            &[Signal::place("Bus_busy")],
            Time::ZERO,
            Time::from_ticks(30),
        )
        .unwrap();
        tl.add_marker(Marker {
            time: Time::from_ticks(3),
            tag: 'O',
        });
        tl.add_marker(Marker {
            time: Time::from_ticks(8),
            tag: 'X',
        });
        assert_eq!(tl.interval('O', 'X'), Some(5));
        assert_eq!(tl.interval('X', 'O'), Some(5));
        assert_eq!(tl.interval('O', 'Z'), None);
        let shown = tl.to_string();
        assert!(shown.contains('O'));
        assert!(shown.contains('X'));
    }

    #[test]
    fn render_binary_and_numeric_rows() {
        let trace = bus_trace();
        let tl = Timeline::sample(
            &trace,
            &[
                Signal::place("Bus_busy"),
                Signal::function("wide", "Bus_busy * 12").unwrap(),
            ],
            Time::ZERO,
            Time::from_ticks(12),
        )
        .unwrap();
        let s = tl.to_string();
        assert!(s.contains('█'), "binary high");
        assert!(s.contains('_'), "binary low");
        assert!(s.contains('+'), "numeric overflow marker");
        assert!(s.contains('|'), "time axis");
    }
}
