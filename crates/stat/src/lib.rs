#![forbid(unsafe_code)]

//! # pnut-stat — statistical analysis of simulation traces
//!
//! Reproduction of the P-NUT `stat` tool (paper §4.2 and Figure 5): a
//! [`TraceSink`] that extracts performance-related information from
//! simulation traces, reporting
//!
//! * per **place**: min / max / time-weighted average / standard
//!   deviation of the token count — for 0/1 "resource" places like
//!   `Bus_busy` the average *is* the utilization;
//! * per **transition**: min / max / time-weighted average / standard
//!   deviation of the number of *concurrent firings*, the start/end
//!   counts, and the **throughput** ("the number of times it finished
//!   firing divided by the simulation time");
//! * per **run**: initial clock, length, events started / finished.
//!
//! "The mapping between this information and higher-level concepts such
//! as processor utilization is left up to the user" (§4.2) — the
//! `pnut-pipeline` crate performs exactly that mapping for the paper's
//! processor model.
//!
//! # Example
//!
//! ```
//! use pnut_core::{NetBuilder, Time};
//! use pnut_stat::analyze;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetBuilder::new("n");
//! b.place("busy", 0);
//! b.place("free", 1);
//! b.transition("acquire").input("free").output("busy").add();
//! // Enabling time keeps the token *on* `busy` for 3 ticks, so the
//! // average token count of `busy` measures the busy fraction.
//! b.transition("release").input("busy").output("free").enabling(3).add();
//! let net = b.build()?;
//! let trace = pnut_sim::simulate(&net, 1, Time::from_ticks(100))?;
//! let report = analyze(&trace);
//! let busy = report.place("busy").expect("place exists");
//! assert!(busy.avg_tokens > 0.0 && busy.avg_tokens <= 1.0);
//! # Ok(())
//! # }
//! ```

mod batch;
mod collect;
mod report;

pub use batch::BatchMeans;
pub use collect::StatCollector;
pub use report::{PlaceStats, StatReport, TransitionStats};

use pnut_trace::RecordedTrace;

/// Analyze a recorded trace in one call (replays it through a
/// [`StatCollector`]).
pub fn analyze(trace: &RecordedTrace) -> StatReport {
    let mut c = StatCollector::new();
    trace.replay(&mut c);
    c.into_report()
        .expect("replay of a recorded trace always begins and ends")
}

// Re-exported so `analyze` users can stream too.
pub use pnut_trace::TraceSink;

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::{NetBuilder, Time};

    #[test]
    fn analyze_matches_streaming_collection() {
        let mut b = NetBuilder::new("n");
        b.place("p", 1);
        b.transition("t").input("p").output("p").firing(2).add();
        let net = b.build().unwrap();

        let trace = pnut_sim::simulate(&net, 3, Time::from_ticks(50)).unwrap();
        let from_replay = analyze(&trace);

        let mut sim = pnut_sim::Simulator::new(&net, 3).unwrap();
        let mut collector = StatCollector::new();
        sim.run(Time::from_ticks(50), &mut collector).unwrap();
        let streamed = collector.into_report().unwrap();

        assert_eq!(format!("{from_replay}"), format!("{streamed}"));
    }
}
