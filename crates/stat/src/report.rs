//! The report structure and its Figure-5 presentation.

use pnut_core::Time;
use std::fmt;

/// Statistics for one transition (the paper's "EVENT STATISTICS" rows).
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionStats {
    /// Transition name.
    pub name: String,
    /// Minimum concurrent firings observed.
    pub min_concurrent: u32,
    /// Maximum concurrent firings observed.
    pub max_concurrent: u32,
    /// Time-weighted average concurrent firings. For single-server
    /// transitions this is the utilization (percent of time busy, §4.2).
    pub avg_concurrent: f64,
    /// Time-weighted standard deviation of concurrent firings.
    pub std_dev: f64,
    /// Number of firings started.
    pub starts: u64,
    /// Number of firings finished.
    pub ends: u64,
    /// Finished firings per tick of simulated time.
    pub throughput: f64,
}

/// Statistics for one place (the paper's "PLACE STATISTICS" rows).
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceStats {
    /// Place name.
    pub name: String,
    /// Minimum token count observed.
    pub min_tokens: u32,
    /// Maximum token count observed.
    pub max_tokens: u32,
    /// Time-weighted average token count. For mutually-exclusive 0/1
    /// places (like `Bus_busy`) this is the resource utilization (§4.2).
    pub avg_tokens: f64,
    /// Time-weighted standard deviation of the token count.
    pub std_dev: f64,
}

/// A complete `stat` report: run, event and place statistics (Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub struct StatReport {
    /// Experiment number.
    pub run_number: u32,
    /// Clock value at the start of the run.
    pub initial_clock: Time,
    /// Clock value at the end of the run.
    pub end_time: Time,
    /// Run length in ticks.
    pub length: Time,
    /// Total firings started.
    pub events_started: u64,
    /// Total firings finished.
    pub events_finished: u64,
    /// Per-place statistics, in place-id order.
    pub places: Vec<PlaceStats>,
    /// Per-transition statistics, in transition-id order.
    pub transitions: Vec<TransitionStats>,
}

impl StatReport {
    /// Look up a place's statistics by name.
    pub fn place(&self, name: &str) -> Option<&PlaceStats> {
        self.places.iter().find(|p| p.name == name)
    }

    /// Look up a transition's statistics by name.
    pub fn transition(&self, name: &str) -> Option<&TransitionStats> {
        self.transitions.iter().find(|t| t.name == name)
    }

    /// Sum of the throughputs of the named transitions — the paper's
    /// recipe for the instruction processing rate ("the sum of the
    /// throughputs of all the execution transitions", §4.2).
    pub fn throughput_sum<'a, I>(&self, names: I) -> f64
    where
        I: IntoIterator<Item = &'a str>,
    {
        names
            .into_iter()
            .filter_map(|n| self.transition(n))
            .map(|t| t.throughput)
            .sum()
    }
}

impl fmt::Display for StatReport {
    /// Renders in the layout of the paper's Figure 5: a RUN STATISTICS
    /// block, an EVENT STATISTICS table, and a PLACE STATISTICS table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RUN STATISTICS")?;
        writeln!(f, "Run number           {}", self.run_number)?;
        writeln!(f, "Initial clock value  {}", self.initial_clock)?;
        writeln!(f, "Length of Simulation {}", self.length)?;
        writeln!(f, "Events started       {}", self.events_started)?;
        writeln!(f, "Events finished      {}", self.events_finished)?;
        writeln!(f)?;
        writeln!(f, "EVENT STATISTICS")?;
        writeln!(f, "Run number {}", self.run_number)?;
        writeln!(
            f,
            "{:<28} {:>9} {:>10} {:>10} {:>13} {:>11}",
            "Transition", "Min/Max", "Avg", "StdDev", "Starts/Ends", "Throughput"
        )?;
        for t in &self.transitions {
            writeln!(
                f,
                "{:<28} {:>9} {:>10.4} {:>10.4} {:>13} {:>11.4}",
                t.name,
                format!("{}/{}", t.min_concurrent, t.max_concurrent),
                t.avg_concurrent,
                t.std_dev,
                format!("{}/{}", t.starts, t.ends),
                t.throughput,
            )?;
        }
        writeln!(f)?;
        writeln!(f, "PLACE STATISTICS")?;
        writeln!(f, "Run number {}", self.run_number)?;
        writeln!(
            f,
            "{:<28} {:>9} {:>10} {:>10}",
            "Place", "Min/Max", "Avg", "StdDev"
        )?;
        for p in &self.places {
            writeln!(
                f,
                "{:<28} {:>9} {:>10.4} {:>10.4}",
                p.name,
                format!("{}/{}", p.min_tokens, p.max_tokens),
                p.avg_tokens,
                p.std_dev,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatReport {
        StatReport {
            run_number: 1,
            initial_clock: Time::ZERO,
            end_time: Time::from_ticks(10000),
            length: Time::from_ticks(10000),
            events_started: 11755,
            events_finished: 11753,
            places: vec![PlaceStats {
                name: "Bus_busy".into(),
                min_tokens: 0,
                max_tokens: 1,
                avg_tokens: 0.6582,
                std_dev: 0.474313,
            }],
            transitions: vec![
                TransitionStats {
                    name: "exec_type_1".into(),
                    min_concurrent: 0,
                    max_concurrent: 1,
                    avg_concurrent: 0.0618,
                    std_dev: 0.240792,
                    starts: 618,
                    ends: 618,
                    throughput: 0.0618,
                },
                TransitionStats {
                    name: "exec_type_2".into(),
                    min_concurrent: 0,
                    max_concurrent: 1,
                    avg_concurrent: 0.0752,
                    std_dev: 0.263714,
                    starts: 376,
                    ends: 376,
                    throughput: 0.0376,
                },
            ],
        }
    }

    #[test]
    fn lookups_by_name() {
        let r = sample();
        assert!(r.place("Bus_busy").is_some());
        assert!(r.place("nope").is_none());
        assert_eq!(r.transition("exec_type_1").unwrap().starts, 618);
    }

    #[test]
    fn throughput_sum_is_instruction_rate() {
        let r = sample();
        let rate = r.throughput_sum(["exec_type_1", "exec_type_2"]);
        assert!((rate - 0.0994).abs() < 1e-12);
        // Unknown names contribute zero rather than erroring.
        assert_eq!(r.throughput_sum(["missing"]), 0.0);
    }

    #[test]
    fn display_contains_figure_5_blocks() {
        let s = sample().to_string();
        assert!(s.contains("RUN STATISTICS"));
        assert!(s.contains("EVENT STATISTICS"));
        assert!(s.contains("PLACE STATISTICS"));
        assert!(s.contains("Events started       11755"));
        assert!(s.contains("Bus_busy"));
        assert!(s.contains("0.6582"));
    }
}
