//! Streaming accumulation of time-weighted statistics.

use crate::report::{PlaceStats, StatReport, TransitionStats};
use pnut_core::Time;
use pnut_trace::{Delta, DeltaKind, TraceHeader, TraceSink};

/// Time-weighted accumulator for one integer-valued signal.
#[derive(Debug, Clone, Default)]
struct Weighted {
    current: i64,
    min: i64,
    max: i64,
    last_change: u64,
    weight: f64,
    sum: f64,
    sum_sq: f64,
}

impl Weighted {
    fn reset(&mut self, initial: i64, at: u64) {
        *self = Weighted {
            current: initial,
            min: initial,
            max: initial,
            last_change: at,
            weight: 0.0,
            sum: 0.0,
            sum_sq: 0.0,
        };
    }

    fn advance_to(&mut self, now: u64) {
        let dt = (now - self.last_change) as f64;
        if dt > 0.0 {
            let x = self.current as f64;
            self.weight += dt;
            self.sum += x * dt;
            self.sum_sq += x * x * dt;
            self.last_change = now;
        }
    }

    fn change(&mut self, now: u64, delta: i64) {
        self.advance_to(now);
        self.current += delta;
        self.min = self.min.min(self.current);
        self.max = self.max.max(self.current);
    }

    fn mean(&self) -> f64 {
        if self.weight > 0.0 {
            self.sum / self.weight
        } else {
            self.current as f64
        }
    }

    fn std_dev(&self) -> f64 {
        if self.weight > 0.0 {
            let mean = self.mean();
            (self.sum_sq / self.weight - mean * mean).max(0.0).sqrt()
        } else {
            0.0
        }
    }
}

/// A [`TraceSink`] computing the paper's `stat` report.
///
/// Feed it a trace (directly from a simulator, through a
/// [`pnut_trace::Tee`], or by replaying a [`pnut_trace::RecordedTrace`])
/// and call [`StatCollector::into_report`].
#[derive(Debug, Default)]
pub struct StatCollector {
    run_number: u32,
    header: Option<TraceHeader>,
    places: Vec<Weighted>,
    firings: Vec<Weighted>,
    starts: Vec<u64>,
    ends: Vec<u64>,
    end_time: Option<Time>,
}

impl StatCollector {
    /// A collector reporting as run number 1.
    pub fn new() -> Self {
        StatCollector {
            run_number: 1,
            ..Default::default()
        }
    }

    /// Set the run number shown in the report (the paper's reports are
    /// numbered per experiment).
    pub fn with_run_number(mut self, run_number: u32) -> Self {
        self.run_number = run_number;
        self
    }

    /// Finish collection and produce the report; `None` if no trace was
    /// seen (no `begin`/`end`).
    pub fn into_report(self) -> Option<StatReport> {
        let header = self.header?;
        let end_time = self.end_time?;
        let length = end_time.ticks().saturating_sub(header.start_time.ticks());
        let places = header
            .place_names
            .iter()
            .zip(&self.places)
            .map(|(name, w)| PlaceStats {
                name: name.clone(),
                min_tokens: w.min as u32,
                max_tokens: w.max as u32,
                avg_tokens: w.mean(),
                std_dev: w.std_dev(),
            })
            .collect();
        let transitions = header
            .transition_names
            .iter()
            .zip(&self.firings)
            .zip(self.starts.iter().zip(&self.ends))
            .map(|((name, w), (&starts, &ends))| TransitionStats {
                name: name.clone(),
                min_concurrent: w.min as u32,
                max_concurrent: w.max as u32,
                avg_concurrent: w.mean(),
                std_dev: w.std_dev(),
                starts,
                ends,
                throughput: if length > 0 {
                    ends as f64 / length as f64
                } else {
                    0.0
                },
            })
            .collect();
        Some(StatReport {
            run_number: self.run_number,
            initial_clock: header.start_time,
            end_time,
            length: Time::from_ticks(length),
            events_started: self.starts.iter().sum(),
            events_finished: self.ends.iter().sum(),
            places,
            transitions,
        })
    }
}

impl TraceSink for StatCollector {
    fn begin(&mut self, header: &TraceHeader) {
        let start = header.start_time.ticks();
        self.places = header
            .initial_marking
            .iter()
            .map(|&t| {
                let mut w = Weighted::default();
                w.reset(i64::from(t), start);
                w
            })
            .collect();
        self.firings = header
            .transition_names
            .iter()
            .map(|_| {
                let mut w = Weighted::default();
                w.reset(0, start);
                w
            })
            .collect();
        self.starts = vec![0; header.transition_names.len()];
        self.ends = vec![0; header.transition_names.len()];
        self.header = Some(header.clone());
        self.end_time = None;
    }

    fn delta(&mut self, delta: &Delta) {
        let now = delta.time.ticks();
        match &delta.kind {
            DeltaKind::Start { transition, .. } => {
                self.firings[transition.index()].change(now, 1);
                self.starts[transition.index()] += 1;
            }
            DeltaKind::Finish { transition, .. } => {
                self.firings[transition.index()].change(now, -1);
                self.ends[transition.index()] += 1;
            }
            DeltaKind::PlaceDelta { place, delta } => {
                self.places[place.index()].change(now, *delta);
            }
            DeltaKind::VarSet { .. } => {}
        }
    }

    fn end(&mut self, end_time: Time) {
        let now = end_time.ticks();
        for w in self.places.iter_mut().chain(self.firings.iter_mut()) {
            w.advance_to(now);
        }
        self.end_time = Some(end_time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::PlaceId;

    fn header() -> TraceHeader {
        TraceHeader::new("n", vec!["p".into()], vec!["t".into()]).with_initial_marking(vec![1])
    }

    #[test]
    fn time_weighted_average_hand_computed() {
        // p holds 1 token on [0,4), 3 tokens on [4,10): avg = (4*1+6*3)/10 = 2.2
        let mut c = StatCollector::new();
        c.begin(&header());
        c.delta(&Delta::new(
            Time::from_ticks(4),
            0,
            DeltaKind::PlaceDelta {
                place: PlaceId::new(0),
                delta: 2,
            },
        ));
        c.end(Time::from_ticks(10));
        let r = c.into_report().unwrap();
        let p = r.place("p").unwrap();
        assert!((p.avg_tokens - 2.2).abs() < 1e-12);
        assert_eq!(p.min_tokens, 1);
        assert_eq!(p.max_tokens, 3);
        // Variance: E[X^2]-E[X]^2 = (4*1+6*9)/10 - 2.2^2 = 5.8 - 4.84 = 0.96
        assert!((p.std_dev - 0.96f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn throughput_is_ends_over_length() {
        let mut c = StatCollector::new();
        c.begin(&header());
        for i in 0..5u64 {
            c.delta(&Delta::new(
                Time::from_ticks(i * 2),
                i,
                DeltaKind::Start {
                    transition: pnut_core::TransitionId::new(0),
                    firing: i,
                },
            ));
            c.delta(&Delta::new(
                Time::from_ticks(i * 2 + 1),
                i,
                DeltaKind::Finish {
                    transition: pnut_core::TransitionId::new(0),
                    firing: i,
                },
            ));
        }
        c.end(Time::from_ticks(10));
        let r = c.into_report().unwrap();
        let t = r.transition("t").unwrap();
        assert_eq!(t.starts, 5);
        assert_eq!(t.ends, 5);
        assert!((t.throughput - 0.5).abs() < 1e-12);
        // Busy half the time: avg concurrent = 0.5.
        assert!((t.avg_concurrent - 0.5).abs() < 1e-12);
        assert_eq!(r.events_started, 5);
        assert_eq!(r.events_finished, 5);
    }

    #[test]
    fn zero_length_run_degrades_gracefully() {
        let mut c = StatCollector::new();
        c.begin(&header());
        c.end(Time::ZERO);
        let r = c.into_report().unwrap();
        assert_eq!(r.place("p").unwrap().avg_tokens, 1.0);
        assert_eq!(r.transition("t").unwrap().throughput, 0.0);
    }

    #[test]
    fn no_trace_no_report() {
        assert!(StatCollector::new().into_report().is_none());
    }

    #[test]
    fn nonzero_start_time_uses_run_length() {
        let mut h = header();
        h.start_time = Time::from_ticks(100);
        let mut c = StatCollector::new();
        c.begin(&h);
        c.delta(&Delta::new(
            Time::from_ticks(150),
            0,
            DeltaKind::PlaceDelta {
                place: PlaceId::new(0),
                delta: 1,
            },
        ));
        c.end(Time::from_ticks(200));
        let r = c.into_report().unwrap();
        assert_eq!(r.length, Time::from_ticks(100));
        // 1 token for 50 ticks, 2 tokens for 50 ticks.
        assert!((r.place("p").unwrap().avg_tokens - 1.5).abs() < 1e-12);
    }
}
