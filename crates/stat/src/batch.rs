//! Batch-means analysis: confidence intervals from a *single* run.
//!
//! Replication (`pnut-pipeline::replicate`) pays for independence with
//! repeated warm-ups. The classical alternative for steady-state
//! estimation is *batch means*: split one long run into contiguous
//! batches, compute the metric per batch, and treat the batch means as
//! (approximately) independent samples. This module provides a
//! [`BatchMeans`] sink that segments the observation of one place's
//! time-weighted token average into fixed-width batches.

use crate::TraceSink;
use pnut_core::{PlaceId, Time};
use pnut_trace::{Delta, DeltaKind, TraceHeader};
use std::fmt;

/// Per-batch time-weighted averages of one place's token count.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMeans {
    place_name: String,
    batch_ticks: u64,
    // Resolved at begin.
    place: Option<PlaceId>,
    start: u64,
    current: i64,
    last_change: u64,
    batch_end: u64,
    acc: f64,
    batches: Vec<f64>,
}

impl BatchMeans {
    /// Track `place_name` with batches of `batch_ticks` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `batch_ticks` is zero.
    pub fn new(place_name: impl Into<String>, batch_ticks: u64) -> Self {
        assert!(batch_ticks > 0, "batch width must be positive");
        BatchMeans {
            place_name: place_name.into(),
            batch_ticks,
            place: None,
            start: 0,
            current: 0,
            last_change: 0,
            batch_end: 0,
            acc: 0.0,
            batches: Vec::new(),
        }
    }

    fn advance_to(&mut self, mut now: u64) {
        // Close any batch boundaries crossed between last_change and now.
        while now >= self.batch_end {
            let dt = self.batch_end - self.last_change;
            self.acc += self.current as f64 * dt as f64;
            self.batches.push(self.acc / self.batch_ticks as f64);
            self.acc = 0.0;
            self.last_change = self.batch_end;
            self.batch_end += self.batch_ticks;
        }
        if now < self.last_change {
            now = self.last_change;
        }
        let dt = now - self.last_change;
        self.acc += self.current as f64 * dt as f64;
        self.last_change = now;
    }

    /// The completed batch means (partial final batches are discarded —
    /// they would bias the estimate).
    pub fn batches(&self) -> &[f64] {
        &self.batches
    }

    /// Mean of batch means.
    pub fn mean(&self) -> f64 {
        if self.batches.is_empty() {
            0.0
        } else {
            self.batches.iter().sum::<f64>() / self.batches.len() as f64
        }
    }

    /// Half-width of an approximate 95% confidence interval over the
    /// batch means (normal approximation; ≥ 2 batches required,
    /// otherwise 0).
    pub fn ci95_half_width(&self) -> f64 {
        let n = self.batches.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.batches.iter().map(|b| (b - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        1.96 * (var / n as f64).sqrt()
    }
}

impl fmt::Display for BatchMeans {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.4} ± {:.4} ({} batches of {} ticks)",
            self.place_name,
            self.mean(),
            self.ci95_half_width(),
            self.batches.len(),
            self.batch_ticks
        )
    }
}

impl TraceSink for BatchMeans {
    fn begin(&mut self, header: &TraceHeader) {
        self.place = header.place_id(&self.place_name);
        self.start = header.start_time.ticks();
        self.current = self
            .place
            .map(|p| i64::from(header.initial_marking[p.index()]))
            .unwrap_or(0);
        self.last_change = self.start;
        self.batch_end = self.start + self.batch_ticks;
        self.acc = 0.0;
        self.batches.clear();
    }

    fn delta(&mut self, delta: &Delta) {
        let Some(place) = self.place else { return };
        if let DeltaKind::PlaceDelta { place: p, delta: d } = delta.kind {
            if p == place {
                self.advance_to(delta.time.ticks());
                self.current += d;
            }
        }
    }

    fn end(&mut self, end_time: Time) {
        if self.place.is_some() {
            // Close batches up to the horizon; advance_to pushes every
            // complete batch and leaves the partial accumulation, which
            // is then dropped.
            let now = end_time.ticks();
            while self.batch_end <= now {
                let dt = self.batch_end - self.last_change;
                self.acc += self.current as f64 * dt as f64;
                self.batches.push(self.acc / self.batch_ticks as f64);
                self.acc = 0.0;
                self.last_change = self.batch_end;
                self.batch_end += self.batch_ticks;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::NetBuilder;

    #[test]
    fn deterministic_square_wave_batches() {
        // busy 2 of every 5 ticks; any batch width that is a multiple of
        // the 5-tick period gives exactly 0.4 per batch.
        let mut b = NetBuilder::new("bus");
        b.place("Bus_free", 1);
        b.place("Bus_busy", 0);
        b.transition("seize")
            .input("Bus_free")
            .output("Bus_busy")
            .enabling(3)
            .add();
        b.transition("release")
            .input("Bus_busy")
            .output("Bus_free")
            .enabling(2)
            .add();
        let net = b.build().unwrap();
        let mut sim = pnut_sim::Simulator::new(&net, 0).unwrap();
        let mut bm = BatchMeans::new("Bus_busy", 50);
        sim.run(Time::from_ticks(500), &mut bm).unwrap();
        assert_eq!(bm.batches().len(), 10);
        for (i, batch) in bm.batches().iter().enumerate() {
            assert!((batch - 0.4).abs() < 1e-9, "batch {i}: {batch}");
        }
        assert!((bm.mean() - 0.4).abs() < 1e-9);
        assert!(bm.ci95_half_width() < 1e-9, "no variance in a square wave");
        assert!(bm.to_string().contains("10 batches"));
    }

    #[test]
    fn stochastic_batches_bracket_the_global_average() {
        let net = pnut_pipeline_build_helper();
        let mut sim = pnut_sim::Simulator::new(&net, 3).unwrap();
        let mut sinks = pnut_trace::Tee::new(
            BatchMeans::new("Bus_busy", 1_000),
            crate::StatCollector::new(),
        );
        sim.run(Time::from_ticks(20_000), &mut sinks).unwrap();
        let (bm, collector) = sinks.into_parts();
        let global = collector
            .into_report()
            .unwrap()
            .place("Bus_busy")
            .unwrap()
            .avg_tokens;
        assert_eq!(bm.batches().len(), 20);
        let half = bm.ci95_half_width();
        assert!(half > 0.0, "stochastic run must show variance");
        assert!(
            (bm.mean() - global).abs() < 0.05,
            "batch mean {} vs global {global}",
            bm.mean()
        );
    }

    /// A miniature stochastic bus workload (avoids a dev-dependency on
    /// pnut-pipeline from within pnut-stat).
    fn pnut_pipeline_build_helper() -> pnut_core::Net {
        let mut b = NetBuilder::new("load");
        b.place("Bus_free", 1);
        b.place("Bus_busy", 0);
        b.place("think", 1);
        b.transition("request")
            .input("think")
            .input("Bus_free")
            .output("Bus_busy")
            .enabling(1)
            .add();
        b.transition("short_use")
            .input("Bus_busy")
            .output("Bus_free")
            .output("think")
            .enabling(2)
            .frequency(0.7)
            .add();
        b.transition("long_use")
            .input("Bus_busy")
            .output("Bus_free")
            .output("think")
            .enabling(9)
            .frequency(0.3)
            .add();
        b.build().unwrap()
    }

    #[test]
    fn unknown_place_yields_empty_batches() {
        let mut bm = BatchMeans::new("nope", 10);
        let header = TraceHeader::new("n", vec!["p".into()], vec![]).with_initial_marking(vec![1]);
        bm.begin(&header);
        bm.end(Time::from_ticks(100));
        assert!(bm.batches().is_empty());
        assert_eq!(bm.mean(), 0.0);
    }

    #[test]
    fn partial_final_batch_discarded() {
        let mut bm = BatchMeans::new("p", 10);
        let header = TraceHeader::new("n", vec!["p".into()], vec![]).with_initial_marking(vec![2]);
        bm.begin(&header);
        bm.end(Time::from_ticks(25));
        assert_eq!(
            bm.batches(),
            &[2.0, 2.0],
            "two full batches, 5 ticks dropped"
        );
    }

    #[test]
    #[should_panic(expected = "batch width")]
    fn zero_width_panics() {
        let _ = BatchMeans::new("p", 0);
    }
}
