//! The static metric registry: every counter, gauge and histogram in
//! the system is declared here, once, as a `static`, and enumerated
//! through [`REGISTRY`]. Engine crates import the statics directly
//! (`metrics::PAGER_FAULTS.inc()`), emitters and checkers walk the
//! registry — there is no runtime registration step and no way for a
//! metric to exist without appearing in the catalogue.
//!
//! Every mutation is gated on the recorder flag (one relaxed atomic
//! load); with no recorder installed nothing is ever written, so all
//! values read zero (see `tests/observability.rs` at the workspace
//! root, which pins that contract).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::enabled;

/// Monotone event count (relaxed atomic; safe from worker threads).
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline(always)]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline(always)]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// Last-write-wins level (plus [`Gauge::set_max`] for peaks).
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    #[inline(always)]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Ratchet the gauge up to `v` if `v` is larger (peak tracking).
    #[inline(always)]
    pub fn set_max(&self, v: u64) {
        if enabled() {
            self.0.fetch_max(v, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// Number of power-of-two buckets: bucket 0 holds exact zeros, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`; u64 needs 64 such ranges.
const HIST_BUCKETS: usize = 65;

/// Fixed-bucket power-of-two histogram with running sum and max.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, name: &'static str) -> crate::HistSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0;
        for (idx, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                let lo = if idx == 0 { 0 } else { 1u64 << (idx - 1) };
                buckets.push((lo, n));
                count += n;
            }
        }
        crate::HistSnapshot {
            name,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// One registry entry: the metric's catalogue name and a reference to
/// its static.
pub enum Metric {
    Counter(&'static str, &'static Counter),
    Gauge(&'static str, &'static Gauge),
    Histogram(&'static str, &'static Histogram),
}

// --- pager: disk-backed paging of the state/edge arenas --------------

/// Reload attempts of a spilled segment (`faults == fault_failures +
/// reloads` always; on a clean run `faults == reloads`).
pub static PAGER_FAULTS: Counter = Counter::new();
/// Reload attempts that failed (I/O error or corrupt image).
pub static PAGER_FAULT_FAILURES: Counter = Counter::new();
/// Reload attempts that succeeded.
pub static PAGER_RELOADS: Counter = Counter::new();
/// Sealed segments evicted from the resident set.
pub static PAGER_EVICTIONS: Counter = Counter::new();
/// Bytes read back from the spill file.
pub static PAGER_SPILL_READ_BYTES: Counter = Counter::new();
/// Bytes written to the spill file.
pub static PAGER_SPILL_WRITE_BYTES: Counter = Counter::new();
/// Bytes currently resident under the shared ledger.
pub static PAGER_RESIDENT_BYTES: Gauge = Gauge::new();
/// High-water mark of [`PAGER_RESIDENT_BYTES`].
pub static PAGER_PEAK_RESIDENT_BYTES: Gauge = Gauge::new();
/// The configured budget (`u64::MAX` = unlimited). Sealed segments are
/// written at most once, so [`PAGER_SPILL_WRITE_BYTES`] doubles as
/// "bytes spilled"; there is no separate gauge for it.
pub static PAGER_BUDGET_BYTES: Gauge = Gauge::new();

// --- store: interned state deduplication -----------------------------

/// Duplicate-detection probes (every intern or lock-free lookup).
pub static STORE_PROBES: Counter = Counter::new();
/// Probes that found the state already interned.
pub static STORE_HITS: Counter = Counter::new();
/// New states appended to the arenas (`== distinct states`).
pub static STORE_MISSES: Counter = Counter::new();
/// States spliced from pending shards at parallel level barriers,
/// bucketed by per-shard splice size.
pub static STORE_SPLICE_STATES: Histogram = Histogram::new();

// --- reach: breadth-first exploration --------------------------------

/// Completed BFS levels (both sequential and parallel builds).
pub static REACH_LEVELS: Counter = Counter::new();
/// Frontier width at each level barrier.
pub static REACH_FRONTIER_WIDTH: Histogram = Histogram::new();
/// Widest frontier seen.
pub static REACH_PEAK_FRONTIER: Gauge = Gauge::new();

// --- ctl: branching-time model checking ------------------------------

/// Whole-graph segment sweeps performed by the CTL evaluator.
pub static CTL_SWEEPS: Counter = Counter::new();
/// Fixpoint iterations of the `E[.U.]` evaluator (EF/AG route here).
pub static CTL_EU_ITERATIONS: Counter = Counter::new();
/// Fixpoint iterations of the `EG` evaluator (AF routes here).
pub static CTL_EG_ITERATIONS: Counter = Counter::new();

// --- markov: semi-Markov steady state --------------------------------

/// Jump-chain edges extracted from the timed graph.
pub static MARKOV_EXTRACTED_EDGES: Counter = Counter::new();
/// Power-iteration steps of the steady-state solver.
pub static MARKOV_SOLVER_ITERATIONS: Counter = Counter::new();

// --- sim / cover ------------------------------------------------------

/// Transition firings executed by the discrete-event simulator.
pub static SIM_EVENTS: Counter = Counter::new();
/// Karp–Miller tree nodes expanded.
pub static COVER_NODES: Counter = Counter::new();

// --- analysis (static lint + invariant cross-check) -------------------

/// Lint findings emitted, all severities.
pub static ANALYSIS_LINT_FINDINGS: Counter = Counter::new();
/// Lint findings of severity `error`.
pub static ANALYSIS_LINT_ERRORS: Counter = Counter::new();
/// States whose P-invariant sums were verified by `--check-invariants`.
pub static ANALYSIS_INVARIANT_STATES: Counter = Counter::new();

/// The full metric catalogue, in emission order. `docs/OBSERVABILITY.md`
/// mirrors this list; `metrics_check` validates emitted NDJSON against
/// it.
pub static REGISTRY: &[Metric] = &[
    Metric::Counter("pager.faults", &PAGER_FAULTS),
    Metric::Counter("pager.fault_failures", &PAGER_FAULT_FAILURES),
    Metric::Counter("pager.reloads", &PAGER_RELOADS),
    Metric::Counter("pager.evictions", &PAGER_EVICTIONS),
    Metric::Counter("pager.spill_read_bytes", &PAGER_SPILL_READ_BYTES),
    Metric::Counter("pager.spill_write_bytes", &PAGER_SPILL_WRITE_BYTES),
    Metric::Gauge("pager.resident_bytes", &PAGER_RESIDENT_BYTES),
    Metric::Gauge("pager.peak_resident_bytes", &PAGER_PEAK_RESIDENT_BYTES),
    Metric::Gauge("pager.budget_bytes", &PAGER_BUDGET_BYTES),
    Metric::Counter("store.probes", &STORE_PROBES),
    Metric::Counter("store.hits", &STORE_HITS),
    Metric::Counter("store.misses", &STORE_MISSES),
    Metric::Histogram("store.splice_states", &STORE_SPLICE_STATES),
    Metric::Counter("reach.levels", &REACH_LEVELS),
    Metric::Histogram("reach.frontier_width", &REACH_FRONTIER_WIDTH),
    Metric::Gauge("reach.peak_frontier", &REACH_PEAK_FRONTIER),
    Metric::Counter("ctl.sweeps", &CTL_SWEEPS),
    Metric::Counter("ctl.eu_iterations", &CTL_EU_ITERATIONS),
    Metric::Counter("ctl.eg_iterations", &CTL_EG_ITERATIONS),
    Metric::Counter("markov.extracted_edges", &MARKOV_EXTRACTED_EDGES),
    Metric::Counter("markov.solver_iterations", &MARKOV_SOLVER_ITERATIONS),
    Metric::Counter("sim.events", &SIM_EVENTS),
    Metric::Counter("cover.nodes", &COVER_NODES),
    Metric::Counter("analysis.lint_findings", &ANALYSIS_LINT_FINDINGS),
    Metric::Counter("analysis.lint_errors", &ANALYSIS_LINT_ERRORS),
    Metric::Counter("analysis.invariant_states", &ANALYSIS_INVARIANT_STATES),
];

/// Zero every registered metric (called by [`crate::install`]).
pub(crate) fn reset_all() {
    for metric in REGISTRY {
        match *metric {
            Metric::Counter(_, c) => c.reset(),
            Metric::Gauge(_, g) => g.reset(),
            Metric::Histogram(_, h) => h.reset(),
        }
    }
}
