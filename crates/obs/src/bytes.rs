//! Human byte sizes, one implementation for the whole workspace: the
//! CLI's `--mem-budget` parsing and the `--stats`/bench reporting both
//! route through this pair instead of hand-rolling their own.

/// Parse a byte-size value like `65536`, `64KiB`, `512MB`, or `2GiB`
/// (binary multipliers throughout; `unlimited` → [`u64::MAX`] disables
/// a budget). Whitespace between the number and the suffix is allowed;
/// fractional sizes are not (budgets are exact).
pub fn parse_bytes(value: &str) -> Option<u64> {
    let v = value.trim().to_ascii_lowercase();
    if v == "unlimited" {
        return Some(u64::MAX);
    }
    let (digits, mult) = if let Some(d) = v
        .strip_suffix("kib")
        .or_else(|| v.strip_suffix("kb"))
        .or_else(|| v.strip_suffix('k'))
    {
        (d, 1u64 << 10)
    } else if let Some(d) = v
        .strip_suffix("mib")
        .or_else(|| v.strip_suffix("mb"))
        .or_else(|| v.strip_suffix('m'))
    {
        (d, 1u64 << 20)
    } else if let Some(d) = v
        .strip_suffix("gib")
        .or_else(|| v.strip_suffix("gb"))
        .or_else(|| v.strip_suffix('g'))
    {
        (d, 1u64 << 30)
    } else if let Some(d) = v.strip_suffix('b') {
        (d, 1)
    } else {
        (v.as_str(), 1)
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_mul(mult)
}

/// Format a byte count for humans: `512 B`, `64 KiB`, `1.5 MiB`,
/// `unlimited` for [`u64::MAX`]. Exact multiples of a binary unit print
/// as integers in the largest unit that divides them (`1025 KiB`, not
/// `1.0 MiB`), so `parse_bytes(&format_bytes(n)) == Some(n)` for every
/// exact KiB/MiB/GiB multiple (pinned by the round-trip test below);
/// inexact values print with one decimal and are display-only.
pub fn format_bytes(n: u64) -> String {
    if n == u64::MAX {
        return "unlimited".to_string();
    }
    if n < 1024 {
        return format!("{n} B");
    }
    if n.is_multiple_of(1024) {
        for (shift, unit) in [(30, "GiB"), (20, "MiB"), (10, "KiB")] {
            if n.trailing_zeros() >= shift {
                return format!("{} {unit}", n >> shift);
            }
        }
    }
    let (shift, unit) = match n {
        _ if n >= 1 << 30 => (30, "GiB"),
        _ if n >= 1 << 20 => (20, "MiB"),
        _ => (10, "KiB"),
    };
    format!("{:.1} {unit}", n as f64 / (1u64 << shift) as f64)
}

#[cfg(test)]
mod tests {
    use super::{format_bytes, parse_bytes};

    #[test]
    fn parses_binary_suffixes() {
        assert_eq!(parse_bytes("65536"), Some(65536));
        assert_eq!(parse_bytes("64KiB"), Some(64 * 1024));
        assert_eq!(parse_bytes("64kb"), Some(64 * 1024));
        assert_eq!(parse_bytes("2M"), Some(2 << 20));
        assert_eq!(parse_bytes("1GiB"), Some(1 << 30));
        assert_eq!(parse_bytes("512B"), Some(512));
        assert_eq!(parse_bytes("unlimited"), Some(u64::MAX));
        assert_eq!(parse_bytes("64 KiB"), Some(64 * 1024));
        assert_eq!(parse_bytes("lots"), None);
        assert_eq!(parse_bytes("1.5M"), None);
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("99999999999999999999G"), None, "overflow");
    }

    #[test]
    fn formats_for_humans() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(1023), "1023 B");
        assert_eq!(format_bytes(64 * 1024), "64 KiB");
        assert_eq!(format_bytes(1536), "1.5 KiB");
        assert_eq!(format_bytes(3 << 20), "3 MiB");
        assert_eq!(format_bytes(7 << 30), "7 GiB");
        assert_eq!(format_bytes(u64::MAX), "unlimited");
    }

    #[test]
    fn round_trips_exact_unit_multiples() {
        for n in [
            0,
            1,
            512,
            1023,
            1024,
            64 * 1024,
            (1 << 20) + (1 << 10), // 1025 KiB, exact in KiB
            3 << 20,
            7 << 30,
            u64::MAX,
        ] {
            let text = format_bytes(n);
            assert_eq!(parse_bytes(&text), Some(n), "round-trip of `{text}`");
        }
        // Inexact values render with a decimal and are display-only.
        assert_eq!(parse_bytes(&format_bytes(1536)), None);
    }
}
