//! Emitters for [`Snapshot`](crate::Snapshot): the machine NDJSON
//! stream and the human `--stats` summary. Metric names and span paths
//! are drawn from fixed in-tree alphabets (`[a-z0-9._/]`), so the JSON
//! writer needs no string escaping — asserted in debug builds.

use std::io::{self, Write};

use crate::bytes::format_bytes;
use crate::{HistSnapshot, Snapshot, SpanRecord};

fn check_name(name: &str) -> &str {
    debug_assert!(
        name.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._/-".contains(c)),
        "metric/span name `{name}` needs escaping"
    );
    name
}

pub(crate) fn write_ndjson<W: Write>(snap: &Snapshot, w: &mut W, tool: &str) -> io::Result<()> {
    writeln!(
        w,
        r#"{{"type":"meta","version":1,"tool":"{}"}}"#,
        check_name(tool)
    )?;
    for &(name, value) in &snap.counters {
        writeln!(
            w,
            r#"{{"type":"counter","name":"{}","value":{value}}}"#,
            check_name(name)
        )?;
    }
    for &(name, value) in &snap.gauges {
        writeln!(
            w,
            r#"{{"type":"gauge","name":"{}","value":{value}}}"#,
            check_name(name)
        )?;
    }
    for hist in &snap.hists {
        let buckets: Vec<String> = hist
            .buckets
            .iter()
            .map(|&(lo, n)| format!("[{lo},{n}]"))
            .collect();
        writeln!(
            w,
            r#"{{"type":"hist","name":"{}","count":{},"sum":{},"max":{},"buckets":[{}]}}"#,
            check_name(hist.name),
            hist.count,
            hist.sum,
            hist.max,
            buckets.join(",")
        )?;
    }
    for span in &snap.spans {
        writeln!(
            w,
            r#"{{"type":"span","path":"{}","start_ns":{},"dur_ns":{}}}"#,
            check_name(&span.path),
            span.start_ns,
            span.dur_ns
        )?;
    }
    Ok(())
}

fn format_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

/// Derived throughput lines: `(counter, span leaf name, label)`. Rates
/// divide a deterministic counter by a wall-clock span duration, so
/// they live only in the human rendering, never in snapshots.
const RATES: &[(&str, &str, &str)] = &[
    ("store.misses", "build", "states interned/sec"),
    ("sim.events", "sim.run", "events/sec"),
    (
        "markov.solver_iterations",
        "markov.solve",
        "solver iters/sec",
    ),
];

fn span_total_ns(spans: &[SpanRecord], leaf: &str) -> u64 {
    spans
        .iter()
        .filter(|s| s.path.rsplit('/').next() == Some(leaf))
        .map(|s| s.dur_ns)
        .sum()
}

fn render_hist_line(h: &HistSnapshot) -> String {
    if h.count == 0 {
        return "empty".to_string();
    }
    let avg = h.sum as f64 / h.count as f64;
    format!("count {} · avg {avg:.1} · max {}", h.count, h.max)
}

pub(crate) fn render_human<W: Write>(snap: &Snapshot, w: &mut W) -> io::Result<()> {
    writeln!(w, "pnut stats:")?;
    if !snap.spans.is_empty() {
        writeln!(w, "  phases:")?;
        for span in &snap.spans {
            let depth = span.path.matches('/').count();
            let leaf = span.path.rsplit('/').next().unwrap_or(&span.path);
            writeln!(
                w,
                "    {:indent$}{leaf:<width$} {:>10}",
                "",
                format_ns(span.dur_ns),
                indent = depth * 2,
                width = 24usize.saturating_sub(depth * 2),
            )?;
        }
    }
    let live_counters: Vec<_> = snap.counters.iter().filter(|&&(_, v)| v != 0).collect();
    if !live_counters.is_empty() {
        writeln!(w, "  counters:")?;
        for &&(name, value) in &live_counters {
            if name.ends_with("_bytes") {
                writeln!(w, "    {name:<28} {:>12}", format_bytes(value))?;
            } else {
                writeln!(w, "    {name:<28} {value:>12}")?;
            }
        }
    }
    let live_gauges: Vec<_> = snap.gauges.iter().filter(|&&(_, v)| v != 0).collect();
    if !live_gauges.is_empty() {
        writeln!(w, "  gauges:")?;
        for &&(name, value) in &live_gauges {
            if name.ends_with("_bytes") {
                writeln!(w, "    {name:<28} {:>12}", format_bytes(value))?;
            } else {
                writeln!(w, "    {name:<28} {value:>12}")?;
            }
        }
    }
    let live_hists: Vec<_> = snap.hists.iter().filter(|h| h.count != 0).collect();
    if !live_hists.is_empty() {
        writeln!(w, "  histograms:")?;
        for h in &live_hists {
            writeln!(w, "    {:<28} {}", h.name, render_hist_line(h))?;
        }
    }
    let mut rate_lines = Vec::new();
    for &(counter, leaf, label) in RATES {
        let events = snap.counter(counter);
        let ns = span_total_ns(&snap.spans, leaf);
        if events > 0 && ns > 0 {
            let per_sec = events as f64 * 1e9 / ns as f64;
            rate_lines.push(format!("    {label:<28} {per_sec:>12.0}"));
        }
    }
    if !rate_lines.is_empty() {
        writeln!(w, "  rates:")?;
        for line in rate_lines {
            writeln!(w, "{line}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![("store.probes", 10), ("store.misses", 6), ("sim.events", 0)],
            gauges: vec![
                ("pager.resident_bytes", 64 * 1024),
                ("reach.peak_frontier", 0),
            ],
            hists: vec![HistSnapshot {
                name: "reach.frontier_width",
                count: 3,
                sum: 12,
                max: 8,
                buckets: vec![(2, 2), (8, 1)],
            }],
            spans: vec![
                SpanRecord {
                    path: "build".to_string(),
                    start_ns: 0,
                    dur_ns: 2_000_000,
                },
                SpanRecord {
                    path: "build/seal".to_string(),
                    start_ns: 500,
                    dur_ns: 1_000,
                },
            ],
        }
    }

    #[test]
    fn human_summary_shows_phases_and_nonzero_metrics() {
        let mut buf = Vec::new();
        render_human(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("pnut stats:"), "{text}");
        assert!(text.contains("build"), "{text}");
        assert!(text.contains("seal"), "{text}");
        assert!(text.contains("store.probes"), "{text}");
        assert!(!text.contains("sim.events"), "zero counters hidden: {text}");
        assert!(text.contains("64 KiB"), "bytes formatted: {text}");
        assert!(
            text.contains("states interned/sec"),
            "derived rate present: {text}"
        );
    }

    #[test]
    fn ndjson_encodes_hists_and_spans() {
        let mut buf = Vec::new();
        write_ndjson(&sample(), &mut buf, "reach").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains(
            r#"{"type":"hist","name":"reach.frontier_width","count":3,"sum":12,"max":8,"buckets":[[2,2],[8,1]]}"#
        ), "{text}");
        assert!(
            text.contains(r#"{"type":"span","path":"build/seal","start_ns":500,"dur_ns":1000}"#),
            "{text}"
        );
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_ns(12), "12 ns");
        assert_eq!(format_ns(12_345), "12.3 µs");
        assert_eq!(format_ns(12_345_678), "12.35 ms");
        assert_eq!(format_ns(1_234_567_890), "1.23 s");
    }
}
