#![forbid(unsafe_code)]

//! # pnut-obs — in-tree observability for the verification pipeline
//!
//! A zero-dependency metrics and phase-span layer shared by every
//! engine crate (see `docs/OBSERVABILITY.md` for the full catalogue and
//! schema). The design constraints, in order:
//!
//! 1. **Near-zero cost when off.** Every mutation is gated on one
//!    relaxed [`AtomicBool`] load; with no recorder installed a counter
//!    increment is a load-and-branch, nothing else. The
//!    `reach/obs_overhead` bench series gates this claim in CI.
//! 2. **Results stay bit-identical.** Telemetry never touches stdout
//!    and never feeds back into exploration. Counter/gauge/histogram
//!    snapshots contain no wall-clock data, so two jobs=1 runs of the
//!    same model produce *identical* snapshots (spans are the one timed
//!    exception and are excluded from [`Snapshot::metrics_eq`]).
//! 3. **Static registry.** All metrics are `static`s declared centrally
//!    in [`metrics`] and enumerated through [`metrics::REGISTRY`] — an
//!    emitter or checker can walk the full catalogue without a
//!    registration step at runtime.
//!
//! The intended session shape (the CLI's `--stats` / `--metrics-json`
//! flags follow it):
//!
//! ```
//! pnut_obs::install();                       // reset + enable
//! {
//!     let _build = pnut_obs::span("build");  // timed phase
//!     pnut_obs::metrics::STORE_MISSES.inc(); // hot-path counters
//! }
//! let snap = pnut_obs::snapshot();
//! pnut_obs::uninstall();
//! assert_eq!(snap.counter("store.misses"), 1);
//! let mut ndjson = Vec::new();
//! snap.write_ndjson(&mut ndjson, "reach").unwrap();
//! ```
//!
//! All state is process-global (that is what makes the hot-path gate a
//! single load), so tests that install a recorder must live in their
//! own test binary and serialize on a mutex — the same discipline
//! `pnut_reach::pager::fail` already imposes.

pub mod bytes;
pub mod metrics;
mod render;

use std::cell::RefCell;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is a recorder installed? Metric mutations check this themselves;
/// call sites only need it to skip *building* expensive inputs (e.g.
/// formatting a heartbeat line).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install the process-global recorder: all metrics reset to zero, the
/// span log clears, and subsequent mutations are recorded.
pub fn install() {
    let mut log = span_log();
    metrics::reset_all();
    log.records.clear();
    log.epoch = Some(Instant::now());
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stop recording. Metric values and spans remain readable (a final
/// [`snapshot`] after `uninstall` sees the finished session) until the
/// next [`install`] resets them.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Phase spans
// ---------------------------------------------------------------------

/// One closed phase span. `path` is the `/`-joined nesting at open time
/// (`"build/seal"`); offsets are relative to the [`install`] epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub path: String,
    pub start_ns: u64,
    pub dur_ns: u64,
}

struct SpanLog {
    epoch: Option<Instant>,
    records: Vec<SpanRecord>,
}

static SPANS: Mutex<SpanLog> = Mutex::new(SpanLog {
    epoch: None,
    records: Vec::new(),
});

fn span_log() -> MutexGuard<'static, SpanLog> {
    SPANS.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    // Span nesting is tracked per thread: only the orchestrating thread
    // opens spans, worker pools never do, so a thread-local stack gives
    // hierarchical paths without any cross-thread coordination.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for a timed phase; the span closes (and is recorded) on
/// drop. Inert when no recorder is installed.
#[must_use = "a span is timed until this guard drops"]
pub struct SpanGuard {
    path: Option<String>,
    start: Option<Instant>,
}

/// Open a hierarchical timed phase span. Spans opened while this guard
/// is live (on the same thread) nest under it.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            path: None,
            start: None,
        };
    }
    let path = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let path = if stack.is_empty() {
            name.to_string()
        } else {
            format!("{}/{name}", stack.join("/"))
        };
        stack.push(name);
        path
    });
    SpanGuard {
        path: Some(path),
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else { return };
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let end = Instant::now();
        let mut log = span_log();
        if let (Some(epoch), Some(start)) = (log.epoch, self.start) {
            let start_ns = start.duration_since(epoch).as_nanos() as u64;
            let dur_ns = end.duration_since(start).as_nanos() as u64;
            log.records.push(SpanRecord {
                path,
                start_ns,
                dur_ns,
            });
        }
    }
}

// ---------------------------------------------------------------------
// Progress heartbeats
// ---------------------------------------------------------------------

static PROGRESS_EVERY: AtomicU64 = AtomicU64::new(0);

/// Emit a heartbeat every `n` ticks (levels, events, iterations — the
/// engine decides what a tick is). `0` disables heartbeats.
pub fn set_progress_every(n: u64) {
    PROGRESS_EVERY.store(n, Ordering::Relaxed);
}

/// Current heartbeat interval (`0` = disabled).
pub fn progress_every() -> u64 {
    PROGRESS_EVERY.load(Ordering::Relaxed)
}

/// Emit one progress heartbeat to stderr if heartbeats are enabled and
/// `tick` lands on the configured interval. The line closure only runs
/// when a line is actually printed, so callers may format freely. Lines
/// must be built from deterministic quantities only (no wall time) so a
/// given run configuration always prints the same heartbeats.
pub fn heartbeat(tick: u64, line: impl FnOnce() -> String) {
    let n = PROGRESS_EVERY.load(Ordering::Relaxed);
    if n != 0 && tick.is_multiple_of(n) {
        eprintln!("pnut: {}", line());
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// One histogram, snapshotted: power-of-two `(bucket_lo, count)` pairs
/// for the non-empty buckets plus running `count`/`sum`/`max`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    pub name: &'static str,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time copy of every registered metric plus the span log.
/// Counters/gauges/histograms are deterministic for a fixed run
/// configuration at jobs=1; spans carry wall-clock durations and are
/// therefore excluded from [`Snapshot::metrics_eq`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub gauges: Vec<(&'static str, u64)>,
    pub hists: Vec<HistSnapshot>,
    pub spans: Vec<SpanRecord>,
}

/// Snapshot every registered metric and the span log, in registry
/// order (spans in start order).
pub fn snapshot() -> Snapshot {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut hists = Vec::new();
    for metric in metrics::REGISTRY {
        match *metric {
            metrics::Metric::Counter(name, c) => counters.push((name, c.get())),
            metrics::Metric::Gauge(name, g) => gauges.push((name, g.get())),
            metrics::Metric::Histogram(name, h) => hists.push(h.snapshot(name)),
        }
    }
    let mut spans = span_log().records.clone();
    spans.sort_by_key(|s| s.start_ns);
    Snapshot {
        counters,
        gauges,
        hists,
        spans,
    }
}

impl Snapshot {
    /// Value of a counter by registry name (0 if unknown — registry
    /// names are static, so a typo shows up as a test failure, not a
    /// panic in production output paths).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Value of a gauge by registry name (0 if unknown).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Deterministic comparison: counters, gauges and histograms only.
    /// Spans are wall-clock and differ between any two runs.
    pub fn metrics_eq(&self, other: &Snapshot) -> bool {
        self.counters == other.counters && self.gauges == other.gauges && self.hists == other.hists
    }

    /// Emit the snapshot as NDJSON (one JSON object per line). The
    /// schema is documented in `docs/OBSERVABILITY.md` and validated in
    /// CI by `metrics_check`; the first line is a
    /// `{"type":"meta","version":1,"tool":...}` header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_ndjson<W: Write>(&self, w: &mut W, tool: &str) -> io::Result<()> {
        render::write_ndjson(self, w, tool)
    }

    /// Render the human `--stats` summary (phases, counters, gauges,
    /// histograms, derived rates).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn render_human<W: Write>(&self, w: &mut W) -> io::Result<()> {
        render::render_human(self, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{STORE_HITS, STORE_MISSES, STORE_PROBES};

    // Everything here toggles the process-global recorder; serialize.
    static GUARD: Mutex<()> = Mutex::new(());

    fn serial<'a>() -> MutexGuard<'a, ()> {
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_mutations_are_dropped() {
        let _g = serial();
        uninstall();
        install();
        uninstall();
        STORE_PROBES.inc();
        STORE_PROBES.add(41);
        metrics::REACH_PEAK_FRONTIER.set_max(7);
        metrics::REACH_FRONTIER_WIDTH.record(32);
        let _span = span("never");
        drop(_span);
        let snap = snapshot();
        assert!(snap.counters.iter().all(|&(_, v)| v == 0));
        assert!(snap.gauges.iter().all(|&(_, v)| v == 0));
        assert!(snap.hists.iter().all(|h| h.count == 0));
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn install_records_and_resets() {
        let _g = serial();
        install();
        STORE_PROBES.add(10);
        STORE_HITS.add(4);
        STORE_MISSES.add(6);
        {
            let _outer = span("build");
            let _inner = span("seal");
        }
        let snap = snapshot();
        uninstall();
        assert_eq!(snap.counter("store.probes"), 10);
        assert_eq!(snap.counter("store.hits"), 4);
        assert_eq!(snap.counter("store.misses"), 6);
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["build", "build/seal"]);
        // A fresh install clears everything.
        install();
        let clean = snapshot();
        uninstall();
        assert_eq!(clean.counter("store.probes"), 0);
        assert!(clean.spans.is_empty());
    }

    #[test]
    fn metrics_eq_ignores_spans() {
        let _g = serial();
        install();
        STORE_PROBES.add(3);
        let _s = span("build");
        drop(_s);
        let a = snapshot();
        install();
        STORE_PROBES.add(3);
        let b = snapshot();
        uninstall();
        assert!(a.metrics_eq(&b), "span differences must not matter");
        assert_ne!(a.spans.len(), b.spans.len());
    }

    #[test]
    fn histograms_bucket_by_powers_of_two() {
        let _g = serial();
        install();
        for v in [0, 1, 2, 3, 4, 1000] {
            metrics::REACH_FRONTIER_WIDTH.record(v);
        }
        let snap = snapshot();
        uninstall();
        let h = snap
            .hists
            .iter()
            .find(|h| h.name == "reach.frontier_width")
            .unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.max, 1000);
        // 0 → [0], 1 → [1], 2..3 → [2], 4 → [4], 1000 → [512].
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (2, 2), (4, 1), (512, 1)]);
    }

    #[test]
    fn ndjson_is_one_valid_object_per_line() {
        let _g = serial();
        install();
        STORE_PROBES.add(2);
        let snap = snapshot();
        uninstall();
        let mut buf = Vec::new();
        snap.write_ndjson(&mut buf, "reach").unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            r#"{"type":"meta","version":1,"tool":"reach"}"#
        );
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains(r#""type":""#), "{line}");
        }
        assert!(text.contains(r#"{"type":"counter","name":"store.probes","value":2}"#));
    }

    #[test]
    fn heartbeat_honors_interval() {
        let _g = serial();
        set_progress_every(0);
        let mut fired = false;
        heartbeat(10, || {
            fired = true;
            String::new()
        });
        assert!(!fired, "disabled heartbeat must not format");
        set_progress_every(4);
        let mut count = 0;
        for tick in 1..=12u64 {
            heartbeat(tick, || {
                count += 1;
                format!("tick {tick}")
            });
        }
        set_progress_every(0);
        assert_eq!(count, 3, "ticks 4, 8, 12");
    }
}
