//! Net construction errors.

use std::fmt;

/// Error produced by [`crate::NetBuilder::build`] when the declared net
/// is inconsistent.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// Two places share a name.
    DuplicatePlace(String),
    /// Two transitions share a name.
    DuplicateTransition(String),
    /// An arc references a place never declared.
    UnknownPlace {
        /// The transition declaring the arc.
        transition: String,
        /// The missing place name.
        place: String,
    },
    /// An arc weight or inhibitor threshold of zero (meaningless: a zero
    /// weight is "no arc"; a zero threshold would disable forever).
    ZeroWeight {
        /// The transition declaring the arc.
        transition: String,
        /// The place on the arc.
        place: String,
    },
    /// A transition's relative firing frequency is not finite and
    /// positive.
    InvalidFrequency {
        /// The transition.
        transition: String,
        /// The offending frequency.
        frequency: f64,
    },
    /// A predicate or action failed to parse.
    BadExpression {
        /// The transition carrying the expression.
        transition: String,
        /// The parse failure.
        source: crate::ParseExprError,
    },
    /// `max_concurrent` of zero would make the transition dead.
    ZeroConcurrency {
        /// The transition.
        transition: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::DuplicatePlace(n) => write!(f, "duplicate place `{n}`"),
            NetError::DuplicateTransition(n) => write!(f, "duplicate transition `{n}`"),
            NetError::UnknownPlace { transition, place } => {
                write!(
                    f,
                    "transition `{transition}` references unknown place `{place}`"
                )
            }
            NetError::ZeroWeight { transition, place } => {
                write!(
                    f,
                    "transition `{transition}` has a zero-weight arc to `{place}`"
                )
            }
            NetError::InvalidFrequency {
                transition,
                frequency,
            } => write!(
                f,
                "transition `{transition}` has invalid firing frequency {frequency}"
            ),
            NetError::BadExpression { transition, source } => {
                write!(
                    f,
                    "transition `{transition}` has a bad expression: {source}"
                )
            }
            NetError::ZeroConcurrency { transition } => {
                write!(f, "transition `{transition}` has max_concurrent = 0")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::BadExpression { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetError::DuplicatePlace("Bus_free".into());
        assert_eq!(e.to_string(), "duplicate place `Bus_free`");
        let e = NetError::UnknownPlace {
            transition: "t".into(),
            place: "p".into(),
        };
        assert!(e.to_string().contains("unknown place"));
    }

    #[test]
    fn source_chains_for_expression_errors() {
        use std::error::Error;
        let parse = crate::Expr::parse("1 +").unwrap_err();
        let e = NetError::BadExpression {
            transition: "t".into(),
            source: parse,
        };
        assert!(e.source().is_some());
    }
}
