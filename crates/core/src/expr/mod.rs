//! Expression language for predicates and actions.
//!
//! The paper's final extension (§1, §3) attaches *predicates*
//! (data-dependent preconditions) and *actions* (data transformations) to
//! transitions. Both are written in a small integer expression language
//! over a variable environment with lookup tables and the random-choice
//! primitive `irand(lo, hi)`:
//!
//! ```text
//! type = irand(1, max_type);
//! number_of_operands_needed = operands[type];
//! ```
//!
//! (the paper writes hyphenated names such as `number-of-operands-needed`;
//! this implementation canonicalizes hyphens to underscores so that `-`
//! can remain the subtraction operator).
//!
//! # Example
//!
//! ```
//! use pnut_core::expr::{Action, Env, Expr, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut env = Env::new();
//! env.define_table("operands", vec![0, 1, 2, 2, 3]);
//! env.set_var("type", Value::Int(2));
//!
//! let action = Action::parse("needed = operands[type]; seen = seen_init + 1;")?;
//! env.set_var("seen_init", Value::Int(0));
//! action.apply_pure(&mut env)?;
//! assert_eq!(env.int("needed")?, 2);
//!
//! let pred = Expr::parse("needed > 0 && type != 0")?;
//! assert_eq!(pred.eval_pure(&env)?, Value::Bool(true));
//! # Ok(())
//! # }
//! ```

mod ast;
pub mod compile;
mod env;
mod eval;
mod lexer;
mod parser;

pub use ast::{Assignment, BinOp, Expr, Func, Target, UnaryOp};
pub use compile::{CompileError, CompiledNet, CompiledTransition};
pub use env::{Env, Value};
pub use eval::EvalError;
pub use parser::ParseExprError;

use crate::Randomness;

/// A sequence of assignments executed when a transition fires.
///
/// See the [module documentation](self) for the surface syntax.
#[derive(Debug, Clone, PartialEq)]
pub struct Action {
    assignments: Vec<Assignment>,
}

impl Action {
    /// Create an action from parsed assignments.
    pub fn new(assignments: Vec<Assignment>) -> Self {
        Action { assignments }
    }

    /// Parse an action from source text: `target = expr;` repeated, where
    /// a target is a variable or a table element `table[index]`. The final
    /// semicolon is optional.
    ///
    /// # Errors
    ///
    /// Returns [`ParseExprError`] on malformed input.
    pub fn parse(src: &str) -> Result<Self, ParseExprError> {
        parser::parse_action(src)
    }

    /// The assignments in execution order.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Execute every assignment in order against `env`, drawing any
    /// `irand` values from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if any expression fails to evaluate or a
    /// target table index is out of bounds.
    pub fn apply(&self, env: &mut Env, rng: &mut dyn Randomness) -> Result<(), EvalError> {
        for a in &self.assignments {
            eval::apply_assignment(a, env, &mut Some(rng))?;
        }
        Ok(())
    }

    /// Execute the action without a randomness source.
    ///
    /// # Errors
    ///
    /// In addition to the errors of [`Action::apply`], returns
    /// [`EvalError::RandomnessUnavailable`] if the action uses `irand`.
    pub fn apply_pure(&self, env: &mut Env) -> Result<(), EvalError> {
        for a in &self.assignments {
            eval::apply_assignment(a, env, &mut None)?;
        }
        Ok(())
    }

    /// Execute the action, returning the scalar-variable assignments
    /// performed, in order. Used by simulators to emit variable deltas
    /// into traces; table-element writes are applied but not logged.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Action::apply`].
    pub fn apply_logged(
        &self,
        env: &mut Env,
        rng: &mut dyn Randomness,
    ) -> Result<Vec<(String, Value)>, EvalError> {
        let mut log = Vec::new();
        for a in &self.assignments {
            eval::apply_assignment(a, env, &mut Some(rng))?;
            if let Target::Var(name) = &a.target {
                let value = env
                    .var(name)
                    .expect("assignment target variable must exist after assignment");
                log.push((name.clone(), value));
            }
        }
        Ok(log)
    }

    /// Whether any assignment's expression uses `irand`.
    pub fn uses_random(&self) -> bool {
        self.assignments.iter().any(|a| {
            a.expr.uses_random()
                || matches!(&a.target, Target::TableElem(_, idx) if idx.uses_random())
        })
    }
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, a) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{a};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CyclingRandomness;

    #[test]
    fn action_roundtrip_display_parse() {
        let a = Action::parse("x = 1 + 2; t[x] = irand(0, 9);").unwrap();
        let shown = a.to_string();
        let b = Action::parse(&shown).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn action_apply_with_randomness() {
        let a = Action::parse("x = irand(5, 5);").unwrap();
        let mut env = Env::new();
        let mut rng = CyclingRandomness::new();
        a.apply(&mut env, &mut rng).unwrap();
        assert_eq!(env.int("x").unwrap(), 5);
    }

    #[test]
    fn pure_apply_rejects_irand() {
        let a = Action::parse("x = irand(1, 2);").unwrap();
        let mut env = Env::new();
        assert!(matches!(
            a.apply_pure(&mut env),
            Err(EvalError::RandomnessUnavailable)
        ));
        assert!(a.uses_random());
    }

    #[test]
    fn table_element_assignment() {
        let a = Action::parse("t[1] = 42;").unwrap();
        let mut env = Env::new();
        env.define_table("t", vec![0, 0, 0]);
        a.apply_pure(&mut env).unwrap();
        assert_eq!(env.table("t").unwrap(), &[0, 42, 0]);
    }
}
