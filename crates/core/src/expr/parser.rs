//! Recursive-descent parser for expressions and actions.

use super::ast::{Assignment, BinOp, Expr, Func, Target, UnaryOp};
use super::lexer::{lex, Spanned, Tok};
use super::Action;
use std::fmt;

/// Error produced when expression or action source text is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExprError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the source where the problem was detected.
    pub position: usize,
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for ParseExprError {}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

pub(super) fn parse_expr(src: &str) -> Result<Expr, ParseExprError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
    };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

pub(super) fn parse_action(src: &str) -> Result<Action, ParseExprError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
    };
    let mut assignments = Vec::new();
    while !p.at_eof() {
        assignments.push(p.assignment()?);
        if !p.eat(&Tok::Semi) && !p.at_eof() {
            return Err(p.error_here("expected `;` between assignments"));
        }
    }
    Ok(Action::new(assignments))
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|s| s.pos)
            .unwrap_or_else(|| self.toks.last().map(|s| s.pos + 1).unwrap_or(0))
    }

    fn error_here(&self, msg: &str) -> ParseExprError {
        ParseExprError {
            message: msg.to_string(),
            position: self.here(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseExprError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error_here(&format!("expected {what}")))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseExprError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.error_here("unexpected trailing input"))
        }
    }

    fn assignment(&mut self) -> Result<Assignment, ParseExprError> {
        let name = match self.bump() {
            Some(Tok::Ident(n)) => n,
            _ => return Err(self.error_here("expected assignment target")),
        };
        let target = if self.eat(&Tok::LBracket) {
            let idx = self.expr()?;
            self.expect(&Tok::RBracket, "`]`")?;
            Target::TableElem(name, Box::new(idx))
        } else {
            Target::Var(name)
        };
        self.expect(&Tok::Assign, "`=`")?;
        let expr = self.expr()?;
        Ok(Assignment { target, expr })
    }

    /// expr := or_expr ( `?` expr `:` expr )?
    fn expr(&mut self) -> Result<Expr, ParseExprError> {
        let cond = self.or_expr()?;
        if self.eat(&Tok::Question) {
            let a = self.expr()?;
            self.expect(&Tok::Colon, "`:`")?;
            let b = self.expr()?;
            Ok(Expr::If(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseExprError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => BinOp::Eq,
            Some(Tok::NotEq) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseExprError> {
        if self.eat(&Tok::Minus) {
            Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.unary_expr()?)))
        } else if self.eat(&Tok::Not) {
            Ok(Expr::Unary(UnaryOp::Not, Box::new(self.unary_expr()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseExprError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::True) => Ok(Expr::Bool(true)),
            Some(Tok::False) => Ok(Expr::Bool(false)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.eat(&Tok::LParen) {
                    let func = match name.as_str() {
                        "irand" => Func::Irand,
                        "min" => Func::Min,
                        "max" => Func::Max,
                        "abs" => Func::Abs,
                        other => {
                            return Err(self.error_here(&format!("unknown function `{other}`")))
                        }
                    };
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(&Tok::Comma, "`,` or `)`")?;
                        }
                    }
                    if args.len() != func.arity() {
                        return Err(self.error_here(&format!(
                            "`{}` takes {} argument(s), got {}",
                            func.name(),
                            func.arity(),
                            args.len()
                        )));
                    }
                    Ok(Expr::Call(func, args))
                } else if self.eat(&Tok::LBracket) {
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket, "`]`")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            _ => Err(self.error_here("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_precedence_correctly() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Int(1)),
                Box::new(Expr::Binary(
                    BinOp::Mul,
                    Box::new(Expr::Int(2)),
                    Box::new(Expr::Int(3))
                ))
            )
        );
    }

    #[test]
    fn parses_conditional() {
        let e = parse_expr("a > 0 ? 1 : 2").unwrap();
        assert!(matches!(e, Expr::If(..)));
    }

    #[test]
    fn parses_calls_and_index() {
        let e = parse_expr("operands[irand(1, max_type)]").unwrap();
        assert!(matches!(e, Expr::Index(..)));
    }

    #[test]
    fn rejects_bad_arity() {
        assert!(parse_expr("irand(1)").is_err());
        assert!(parse_expr("abs(1, 2)").is_err());
        assert!(parse_expr("foo(1)").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_expr("1 + 2 3").is_err());
        assert!(parse_expr("(1 + 2").is_err());
    }

    #[test]
    fn comparison_does_not_chain() {
        // a < b < c is rejected: the second `<` has no parse.
        assert!(parse_expr("a < b < c").is_err());
    }

    #[test]
    fn action_with_optional_final_semicolon() {
        assert!(parse_action("x = 1; y = 2").is_ok());
        assert!(parse_action("x = 1; y = 2;").is_ok());
        assert!(parse_action("x = 1 y = 2").is_err());
        assert!(parse_action("3 = x;").is_err());
    }

    #[test]
    fn left_associativity_of_sub() {
        let e = parse_expr("10 - 3 - 2").unwrap();
        assert_eq!(
            e,
            Expr::Binary(
                BinOp::Sub,
                Box::new(Expr::Binary(
                    BinOp::Sub,
                    Box::new(Expr::Int(10)),
                    Box::new(Expr::Int(3))
                )),
                Box::new(Expr::Int(2))
            )
        );
    }
}
