//! Variable environment for interpreted nets.

use super::EvalError;
use std::collections::BTreeMap;
use std::fmt;

/// A runtime value: the language is integer/boolean only, matching the
/// paper's usage (instruction types, operand counts, delays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Extract an integer.
    ///
    /// # Errors
    ///
    /// [`EvalError::TypeMismatch`] if the value is a boolean.
    pub fn as_int(self) -> Result<i64, EvalError> {
        match self {
            Value::Int(v) => Ok(v),
            Value::Bool(_) => Err(EvalError::TypeMismatch {
                expected: "int",
                found: "bool",
            }),
        }
    }

    /// Extract a boolean.
    ///
    /// # Errors
    ///
    /// [`EvalError::TypeMismatch`] if the value is an integer.
    pub fn as_bool(self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(v) => Ok(v),
            Value::Int(_) => Err(EvalError::TypeMismatch {
                expected: "bool",
                found: "int",
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// The variable environment: named scalar variables plus named integer
/// lookup tables (the paper's `operands[type]` pattern, §3).
///
/// Uses `BTreeMap` so iteration order — and therefore trace output and
/// simulation behaviour that observes it — is deterministic.
///
/// # Example
///
/// ```
/// use pnut_core::expr::{Env, Value};
///
/// let mut env = Env::new();
/// env.set_var("type", Value::Int(3));
/// env.define_table("operands", vec![0, 1, 2, 2]);
/// assert_eq!(env.int("type").unwrap(), 3);
/// assert_eq!(env.table_elem("operands", 3).unwrap(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Env {
    vars: BTreeMap<String, Value>,
    tables: BTreeMap<String, Vec<i64>>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set (or create) a variable.
    pub fn set_var(&mut self, name: impl Into<String>, value: Value) {
        self.vars.insert(name.into(), value);
    }

    /// Look up a variable.
    pub fn var(&self, name: &str) -> Option<Value> {
        self.vars.get(name).copied()
    }

    /// Look up a variable as an integer.
    ///
    /// # Errors
    ///
    /// [`EvalError::UnknownVariable`] if absent, [`EvalError::TypeMismatch`]
    /// if it holds a boolean.
    pub fn int(&self, name: &str) -> Result<i64, EvalError> {
        self.var(name)
            .ok_or_else(|| EvalError::UnknownVariable(name.to_string()))?
            .as_int()
    }

    /// Define (or replace) a lookup table.
    pub fn define_table(&mut self, name: impl Into<String>, values: Vec<i64>) {
        self.tables.insert(name.into(), values);
    }

    /// Borrow a table's contents.
    pub fn table(&self, name: &str) -> Option<&[i64]> {
        self.tables.get(name).map(Vec::as_slice)
    }

    /// Read a table element.
    ///
    /// # Errors
    ///
    /// [`EvalError::UnknownTable`] if the table does not exist,
    /// [`EvalError::IndexOutOfBounds`] if the index is negative or past the
    /// end.
    pub fn table_elem(&self, name: &str, index: i64) -> Result<i64, EvalError> {
        let t = self
            .tables
            .get(name)
            .ok_or_else(|| EvalError::UnknownTable(name.to_string()))?;
        usize::try_from(index)
            .ok()
            .and_then(|i| t.get(i).copied())
            .ok_or(EvalError::IndexOutOfBounds {
                table: name.to_string(),
                index,
                len: t.len(),
            })
    }

    /// Write a table element.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Env::table_elem`].
    pub fn set_table_elem(&mut self, name: &str, index: i64, value: i64) -> Result<(), EvalError> {
        let t = self
            .tables
            .get_mut(name)
            .ok_or_else(|| EvalError::UnknownTable(name.to_string()))?;
        let len = t.len();
        let slot = usize::try_from(index)
            .ok()
            .and_then(|i| t.get_mut(i))
            .ok_or(EvalError::IndexOutOfBounds {
                table: name.to_string(),
                index,
                len,
            })?;
        *slot = value;
        Ok(())
    }

    /// Iterate over variables in name order.
    pub fn vars(&self) -> impl Iterator<Item = (&str, Value)> + '_ {
        self.vars.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate over tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = (&str, &[i64])> + '_ {
        self.tables.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of defined variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert!(Value::Int(7).as_bool().is_err());
        assert!(Value::Bool(true).as_bool().unwrap());
        assert!(Value::Bool(true).as_int().is_err());
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn unknown_lookups_error() {
        let env = Env::new();
        assert!(matches!(env.int("x"), Err(EvalError::UnknownVariable(_))));
        assert!(matches!(
            env.table_elem("t", 0),
            Err(EvalError::UnknownTable(_))
        ));
    }

    #[test]
    fn table_bounds_checked() {
        let mut env = Env::new();
        env.define_table("t", vec![10, 20]);
        assert_eq!(env.table_elem("t", 1).unwrap(), 20);
        assert!(matches!(
            env.table_elem("t", 2),
            Err(EvalError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            env.table_elem("t", -1),
            Err(EvalError::IndexOutOfBounds { .. })
        ));
        env.set_table_elem("t", 0, 99).unwrap();
        assert_eq!(env.table("t").unwrap(), &[99, 20]);
        assert!(env.set_table_elem("t", 5, 0).is_err());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut env = Env::new();
        env.set_var("b", Value::Int(2));
        env.set_var("a", Value::Int(1));
        let names: Vec<&str> = env.vars().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(env.var_count(), 2);
    }
}
