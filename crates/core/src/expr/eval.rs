//! Expression evaluation.

use super::ast::{Assignment, BinOp, Expr, Func, Target, UnaryOp};
use super::env::{Env, Value};
use crate::Randomness;
use std::fmt;

/// Error produced while evaluating an expression or applying an action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A referenced variable is not defined in the environment.
    UnknownVariable(String),
    /// A referenced table is not defined in the environment.
    UnknownTable(String),
    /// A table index was negative or past the end of the table.
    IndexOutOfBounds {
        /// The table name.
        table: String,
        /// The offending index.
        index: i64,
        /// The table length.
        len: usize,
    },
    /// An operation received a value of the wrong type.
    TypeMismatch {
        /// What the operation needed.
        expected: &'static str,
        /// What it got.
        found: &'static str,
    },
    /// Division or remainder by zero.
    DivisionByZero,
    /// Arithmetic overflow.
    Overflow,
    /// `irand(lo, hi)` with `lo > hi`.
    EmptyRandomRange {
        /// Lower bound supplied.
        lo: i64,
        /// Upper bound supplied.
        hi: i64,
    },
    /// `irand` was evaluated but no randomness source was provided
    /// (e.g. during reachability analysis, which must be deterministic).
    RandomnessUnavailable,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            EvalError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EvalError::IndexOutOfBounds { table, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for table `{table}` of length {len}"
                )
            }
            EvalError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::Overflow => write!(f, "arithmetic overflow"),
            EvalError::EmptyRandomRange { lo, hi } => {
                write!(f, "empty random range irand({lo}, {hi})")
            }
            EvalError::RandomnessUnavailable => {
                write!(f, "irand used where no randomness source is available")
            }
        }
    }
}

impl std::error::Error for EvalError {}

type Rng<'a> = Option<&'a mut dyn Randomness>;

impl Expr {
    /// Evaluate against `env`, drawing `irand` values from `rng`.
    ///
    /// # Errors
    ///
    /// See [`EvalError`] for the conditions.
    ///
    /// # Example
    ///
    /// ```
    /// use pnut_core::expr::{Env, Expr, Value};
    /// use pnut_core::CyclingRandomness;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let e = Expr::parse("2 + irand(1, 1) * 10")?;
    /// let v = e.eval(&Env::new(), &mut CyclingRandomness::new())?;
    /// assert_eq!(v, Value::Int(12));
    /// # Ok(())
    /// # }
    /// ```
    pub fn eval(&self, env: &Env, rng: &mut dyn Randomness) -> Result<Value, EvalError> {
        eval_inner(self, env, &mut Some(rng))
    }

    /// Evaluate without a randomness source.
    ///
    /// # Errors
    ///
    /// In addition to the [`Expr::eval`] errors, returns
    /// [`EvalError::RandomnessUnavailable`] if the expression uses `irand`.
    pub fn eval_pure(&self, env: &Env) -> Result<Value, EvalError> {
        eval_inner(self, env, &mut None)
    }

    /// Evaluate and require an integer result.
    ///
    /// # Errors
    ///
    /// The [`Expr::eval`] errors plus [`EvalError::TypeMismatch`] for a
    /// boolean result.
    pub fn eval_int(&self, env: &Env, rng: &mut dyn Randomness) -> Result<i64, EvalError> {
        self.eval(env, rng)?.as_int()
    }

    /// Evaluate and require a boolean result.
    ///
    /// # Errors
    ///
    /// The [`Expr::eval`] errors plus [`EvalError::TypeMismatch`] for an
    /// integer result.
    pub fn eval_bool(&self, env: &Env, rng: &mut dyn Randomness) -> Result<bool, EvalError> {
        self.eval(env, rng)?.as_bool()
    }
}

fn eval_inner(expr: &Expr, env: &Env, rng: &mut Rng<'_>) -> Result<Value, EvalError> {
    match expr {
        Expr::Int(v) => Ok(Value::Int(*v)),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Var(name) => env
            .var(name)
            .ok_or_else(|| EvalError::UnknownVariable(name.clone())),
        Expr::Index(table, idx) => {
            let i = eval_inner(idx, env, rng)?.as_int()?;
            env.table_elem(table, i).map(Value::Int)
        }
        Expr::Unary(op, e) => {
            let v = eval_inner(e, env, rng)?;
            match op {
                UnaryOp::Neg => v
                    .as_int()?
                    .checked_neg()
                    .map(Value::Int)
                    .ok_or(EvalError::Overflow),
                UnaryOp::Not => Ok(Value::Bool(!v.as_bool()?)),
            }
        }
        Expr::Binary(op, a, b) => eval_binary(*op, a, b, env, rng),
        Expr::Call(func, args) => eval_call(*func, args, env, rng),
        Expr::If(c, a, b) => {
            if eval_inner(c, env, rng)?.as_bool()? {
                eval_inner(a, env, rng)
            } else {
                eval_inner(b, env, rng)
            }
        }
    }
}

fn eval_binary(
    op: BinOp,
    a: &Expr,
    b: &Expr,
    env: &Env,
    rng: &mut Rng<'_>,
) -> Result<Value, EvalError> {
    // Short-circuit logical operators first.
    match op {
        BinOp::And => {
            return if !eval_inner(a, env, rng)?.as_bool()? {
                Ok(Value::Bool(false))
            } else {
                Ok(Value::Bool(eval_inner(b, env, rng)?.as_bool()?))
            };
        }
        BinOp::Or => {
            return if eval_inner(a, env, rng)?.as_bool()? {
                Ok(Value::Bool(true))
            } else {
                Ok(Value::Bool(eval_inner(b, env, rng)?.as_bool()?))
            };
        }
        _ => {}
    }
    let va = eval_inner(a, env, rng)?;
    let vb = eval_inner(b, env, rng)?;
    // Equality works on both types; other comparisons and arithmetic are
    // integer-only.
    match op {
        BinOp::Eq => return Ok(Value::Bool(va == vb)),
        BinOp::Ne => return Ok(Value::Bool(va != vb)),
        _ => {}
    }
    let x = va.as_int()?;
    let y = vb.as_int()?;
    let v = match op {
        BinOp::Lt => Value::Bool(x < y),
        BinOp::Le => Value::Bool(x <= y),
        BinOp::Gt => Value::Bool(x > y),
        BinOp::Ge => Value::Bool(x >= y),
        BinOp::Add => Value::Int(x.checked_add(y).ok_or(EvalError::Overflow)?),
        BinOp::Sub => Value::Int(x.checked_sub(y).ok_or(EvalError::Overflow)?),
        BinOp::Mul => Value::Int(x.checked_mul(y).ok_or(EvalError::Overflow)?),
        BinOp::Div => {
            if y == 0 {
                return Err(EvalError::DivisionByZero);
            }
            Value::Int(x.checked_div(y).ok_or(EvalError::Overflow)?)
        }
        BinOp::Rem => {
            if y == 0 {
                return Err(EvalError::DivisionByZero);
            }
            Value::Int(x.checked_rem(y).ok_or(EvalError::Overflow)?)
        }
        BinOp::And | BinOp::Or | BinOp::Eq | BinOp::Ne => unreachable!("handled above"),
    };
    Ok(v)
}

fn eval_call(func: Func, args: &[Expr], env: &Env, rng: &mut Rng<'_>) -> Result<Value, EvalError> {
    match func {
        Func::Irand => {
            let lo = eval_inner(&args[0], env, rng)?.as_int()?;
            let hi = eval_inner(&args[1], env, rng)?.as_int()?;
            if lo > hi {
                return Err(EvalError::EmptyRandomRange { lo, hi });
            }
            match rng {
                Some(r) => Ok(Value::Int(r.int_in_range(lo, hi))),
                None => Err(EvalError::RandomnessUnavailable),
            }
        }
        Func::Min => {
            let a = eval_inner(&args[0], env, rng)?.as_int()?;
            let b = eval_inner(&args[1], env, rng)?.as_int()?;
            Ok(Value::Int(a.min(b)))
        }
        Func::Max => {
            let a = eval_inner(&args[0], env, rng)?.as_int()?;
            let b = eval_inner(&args[1], env, rng)?.as_int()?;
            Ok(Value::Int(a.max(b)))
        }
        Func::Abs => {
            let a = eval_inner(&args[0], env, rng)?.as_int()?;
            a.checked_abs().map(Value::Int).ok_or(EvalError::Overflow)
        }
    }
}

pub(super) fn apply_assignment(
    a: &Assignment,
    env: &mut Env,
    rng: &mut Rng<'_>,
) -> Result<(), EvalError> {
    let value = eval_inner(&a.expr, env, rng)?;
    match &a.target {
        Target::Var(name) => env.set_var(name.clone(), value),
        Target::TableElem(table, idx) => {
            let i = eval_inner(idx, env, rng)?.as_int()?;
            env.set_table_elem(table, i, value.as_int()?)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CyclingRandomness;

    fn ev(src: &str, env: &Env) -> Result<Value, EvalError> {
        Expr::parse(src).unwrap().eval_pure(env)
    }

    #[test]
    fn arithmetic() {
        let env = Env::new();
        assert_eq!(ev("2 + 3 * 4", &env).unwrap(), Value::Int(14));
        assert_eq!(ev("10 / 3", &env).unwrap(), Value::Int(3));
        assert_eq!(ev("10 % 3", &env).unwrap(), Value::Int(1));
        assert_eq!(ev("-5 + 2", &env).unwrap(), Value::Int(-3));
    }

    #[test]
    fn comparisons_and_logic() {
        let env = Env::new();
        assert_eq!(ev("1 < 2 && 3 >= 3", &env).unwrap(), Value::Bool(true));
        assert_eq!(ev("1 == 2 || 2 != 2", &env).unwrap(), Value::Bool(false));
        assert_eq!(ev("!(1 > 2)", &env).unwrap(), Value::Bool(true));
        assert_eq!(ev("true == true", &env).unwrap(), Value::Bool(true));
    }

    #[test]
    fn short_circuit_avoids_errors() {
        // `x` is undefined but never evaluated.
        let env = Env::new();
        assert_eq!(ev("false && x > 0", &env).unwrap(), Value::Bool(false));
        assert_eq!(ev("true || x > 0", &env).unwrap(), Value::Bool(true));
    }

    #[test]
    fn division_by_zero_and_overflow() {
        let env = Env::new();
        assert_eq!(ev("1 / 0", &env), Err(EvalError::DivisionByZero));
        assert_eq!(ev("1 % 0", &env), Err(EvalError::DivisionByZero));
        assert_eq!(
            ev("9223372036854775807 + 1", &env),
            Err(EvalError::Overflow)
        );
    }

    #[test]
    fn conditional_selects_branch() {
        let mut env = Env::new();
        env.set_var("x", Value::Int(5));
        assert_eq!(ev("x > 0 ? x : -x", &env).unwrap(), Value::Int(5));
        env.set_var("x", Value::Int(-5));
        assert_eq!(ev("x > 0 ? x : 0 - x", &env).unwrap(), Value::Int(5));
    }

    #[test]
    fn builtins() {
        let env = Env::new();
        assert_eq!(ev("min(3, 7)", &env).unwrap(), Value::Int(3));
        assert_eq!(ev("max(3, 7)", &env).unwrap(), Value::Int(7));
        assert_eq!(ev("abs(-4)", &env).unwrap(), Value::Int(4));
    }

    #[test]
    fn irand_bounds_and_determinism() {
        let env = Env::new();
        let e = Expr::parse("irand(2, 4)").unwrap();
        let mut rng = CyclingRandomness::new();
        let vals: Vec<i64> = (0..3)
            .map(|_| e.eval(&env, &mut rng).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![2, 3, 4]);
        let bad = Expr::parse("irand(4, 2)").unwrap();
        assert_eq!(
            bad.eval(&env, &mut rng),
            Err(EvalError::EmptyRandomRange { lo: 4, hi: 2 })
        );
    }

    #[test]
    fn type_errors_are_reported() {
        let env = Env::new();
        assert!(matches!(
            ev("true + 1", &env),
            Err(EvalError::TypeMismatch { .. })
        ));
        assert!(matches!(
            ev("!3", &env),
            Err(EvalError::TypeMismatch { .. })
        ));
        assert!(matches!(
            ev("1 ? 2 : 3", &env),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn table_lookup_in_expressions() {
        let mut env = Env::new();
        env.define_table("operands", vec![0, 1, 2, 2]);
        env.set_var("type", Value::Int(3));
        assert_eq!(ev("operands[type]", &env).unwrap(), Value::Int(2));
        assert!(matches!(
            ev("operands[9]", &env),
            Err(EvalError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn eval_int_and_eval_bool_helpers() {
        let env = Env::new();
        let mut rng = CyclingRandomness::new();
        assert_eq!(
            Expr::parse("1 + 1")
                .unwrap()
                .eval_int(&env, &mut rng)
                .unwrap(),
            2
        );
        assert!(Expr::parse("1 < 2")
            .unwrap()
            .eval_bool(&env, &mut rng)
            .unwrap());
        assert!(Expr::parse("1 + 1")
            .unwrap()
            .eval_bool(&env, &mut rng)
            .is_err());
    }
}
