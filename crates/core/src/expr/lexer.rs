//! Tokenizer for the expression language.

use super::parser::ParseExprError;

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(super) struct Spanned {
    pub tok: Tok,
    pub pos: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(super) enum Tok {
    Int(i64),
    Ident(String),
    True,
    False,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Assign,
    Question,
    Colon,
    Comma,
    Semi,
    LParen,
    RParen,
    LBracket,
    RBracket,
}

/// Tokenize `src`. Identifiers may contain letters, digits and `_`; a `#`
/// starts a comment to end of line.
pub(super) fn lex(src: &str) -> Result<Vec<Spanned>, ParseExprError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: i64 = text.parse().map_err(|_| ParseExprError {
                    message: format!("integer literal `{text}` out of range"),
                    position: start,
                })?;
                toks.push(Spanned {
                    tok: Tok::Int(v),
                    pos,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "true" => Tok::True,
                    "false" => Tok::False,
                    _ => Tok::Ident(word.to_string()),
                };
                toks.push(Spanned { tok, pos });
            }
            '+' => {
                toks.push(Spanned {
                    tok: Tok::Plus,
                    pos,
                });
                i += 1;
            }
            '-' => {
                toks.push(Spanned {
                    tok: Tok::Minus,
                    pos,
                });
                i += 1;
            }
            '*' => {
                toks.push(Spanned {
                    tok: Tok::Star,
                    pos,
                });
                i += 1;
            }
            '/' => {
                toks.push(Spanned {
                    tok: Tok::Slash,
                    pos,
                });
                i += 1;
            }
            '%' => {
                toks.push(Spanned {
                    tok: Tok::Percent,
                    pos,
                });
                i += 1;
            }
            '?' => {
                toks.push(Spanned {
                    tok: Tok::Question,
                    pos,
                });
                i += 1;
            }
            ':' => {
                toks.push(Spanned {
                    tok: Tok::Colon,
                    pos,
                });
                i += 1;
            }
            ',' => {
                toks.push(Spanned {
                    tok: Tok::Comma,
                    pos,
                });
                i += 1;
            }
            ';' => {
                toks.push(Spanned {
                    tok: Tok::Semi,
                    pos,
                });
                i += 1;
            }
            '(' => {
                toks.push(Spanned {
                    tok: Tok::LParen,
                    pos,
                });
                i += 1;
            }
            ')' => {
                toks.push(Spanned {
                    tok: Tok::RParen,
                    pos,
                });
                i += 1;
            }
            '[' => {
                toks.push(Spanned {
                    tok: Tok::LBracket,
                    pos,
                });
                i += 1;
            }
            ']' => {
                toks.push(Spanned {
                    tok: Tok::RBracket,
                    pos,
                });
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Spanned {
                        tok: Tok::EqEq,
                        pos,
                    });
                    i += 2;
                } else {
                    toks.push(Spanned {
                        tok: Tok::Assign,
                        pos,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Spanned {
                        tok: Tok::NotEq,
                        pos,
                    });
                    i += 2;
                } else {
                    toks.push(Spanned { tok: Tok::Not, pos });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Spanned { tok: Tok::Le, pos });
                    i += 2;
                } else {
                    toks.push(Spanned { tok: Tok::Lt, pos });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Spanned { tok: Tok::Ge, pos });
                    i += 2;
                } else {
                    toks.push(Spanned { tok: Tok::Gt, pos });
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    toks.push(Spanned {
                        tok: Tok::AndAnd,
                        pos,
                    });
                    i += 2;
                } else {
                    return Err(ParseExprError {
                        message: "expected `&&`".to_string(),
                        position: pos,
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    toks.push(Spanned {
                        tok: Tok::OrOr,
                        pos,
                    });
                    i += 2;
                } else {
                    return Err(ParseExprError {
                        message: "expected `||`".to_string(),
                        position: pos,
                    });
                }
            }
            other => {
                return Err(ParseExprError {
                    message: format!("unexpected character `{other}`"),
                    position: pos,
                });
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_all_operator_forms() {
        let toks = lex("a == b != c <= d >= e < f > g && h || !i").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|s| &s.tok).collect();
        assert!(kinds.contains(&&Tok::EqEq));
        assert!(kinds.contains(&&Tok::NotEq));
        assert!(kinds.contains(&&Tok::Le));
        assert!(kinds.contains(&&Tok::Ge));
        assert!(kinds.contains(&&Tok::AndAnd));
        assert!(kinds.contains(&&Tok::OrOr));
        assert!(kinds.contains(&&Tok::Not));
    }

    #[test]
    fn comments_and_whitespace_skipped() {
        let toks = lex("1 # a comment\n + 2").unwrap();
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn rejects_stray_ampersand_and_garbage() {
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn rejects_overflowing_literal() {
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn positions_are_byte_offsets() {
        let toks = lex("ab + 1").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 3);
        assert_eq!(toks[2].pos, 5);
    }
}
