//! Bytecode compilation for the expression language.
//!
//! Reachability and simulation evaluate every transition's predicate,
//! action, and delay expressions once *per candidate firing per state*.
//! Walking the [`Expr`] tree each time pays for recursion,
//! `BTreeMap` name lookups, and (for actions) a full environment clone.
//! This module lowers each expression once, at net-build time, into a
//! flat register [`Program`] over a dense [`SlotMap`], so the hot loop
//! is a non-allocating array-indexed interpreter.
//!
//! # Instruction set
//!
//! Programs are sequences of instructions (`Instr`) over a register file of
//! [`Value`]s (registers are dynamically typed exactly like the tree
//! interpreter — an `i64`-only file could not reproduce
//! [`EvalError::TypeMismatch`] semantics bit-for-bit). The result of a
//! program is always left in register 0.
//!
//! | instruction        | effect                                                        |
//! |--------------------|---------------------------------------------------------------|
//! | `Const`            | `r[dst] = v`                                                  |
//! | `Load`             | `r[dst] = vars[slot]` (error: `UnknownVariable`)              |
//! | `LoadElem`         | `r[dst] = tables[table][r[idx]]` (bounds-checked)             |
//! | `Neg`, `Not`       | unary ops with the interpreter's overflow/type checks         |
//! | `Bin`              | non-short-circuit binary op (`Eq`/`Ne` compare [`Value`]s)    |
//! | `AsInt`, `AsBool`  | type assertion, reproducing interleaved `as_int`/`as_bool`    |
//! | `Min`,`Max`,`Abs`  | built-in calls on integer registers                           |
//! | `Irand`            | `r[dst] = rng(r[lo]..=r[hi])` (range/availability checks)     |
//! | `Jump`, `JumpIf*`  | control flow for `&&`, `\|\|`, and `?:` short-circuiting      |
//!
//! `&&`/`||`/`?:` lower to conditional jumps so the untaken side is
//! never evaluated, matching the interpreter's short-circuiting
//! (including *not* raising errors hidden behind a short circuit).
//!
//! # Slot-map contract
//!
//! A [`SlotMap`] assigns each variable and table name a dense index.
//! [`SlotMap::for_net`] collects every name the net can ever define:
//! the initial environment plus every assignment target. Runtime
//! environments reachable from the initial one can only bind names from
//! that set, so [`EnvSlots::load`] is a linear merge over the sorted
//! names and [`EnvSlots::to_env`] reconstructs an [`Env`] that is
//! bit-identical (`==`, same hash) to what the tree interpreter's
//! clone-and-`apply_pure` would have produced.
//!
//! # Error-parity guarantee
//!
//! For every expression and environment, `Program::eval*` returns the
//! *same* `Result` — value or [`EvalError`] variant with identical
//! payload — as `Expr::eval*`, and `ActionProgram::apply*` leaves the
//! environment in the same state as `Action::apply*`. Evaluation order,
//! type-check interleaving, and `irand` draw order are preserved, so
//! seeded simulations produce identical traces. Constant folding is
//! only applied to subexpressions that provably evaluate without error
//! and without consuming randomness. The differential battery in
//! `tests/bytecode_diff.rs` (plus `tests/props.rs` under the
//! `proptest-tests` feature) checks this over the full grammar,
//! including the error cases.

use super::ast::{Assignment, BinOp, Expr, Func, Target, UnaryOp};
use super::env::{Env, Value};
use super::eval::EvalError;
use super::Action;
use crate::net::{Delay, Net};
use crate::Randomness;
use std::collections::BTreeSet;
use std::fmt;

/// Dense name → index assignment for variables and tables.
///
/// Names are stored sorted, so loading an [`Env`] (whose iteration is
/// name-ordered) into [`EnvSlots`] is a linear merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotMap {
    vars: Vec<String>,
    tables: Vec<String>,
}

impl SlotMap {
    /// Build the slot map for a net: every variable and table name in
    /// the initial environment, referenced by any transition
    /// expression, or assigned by any action.
    pub fn for_net(net: &Net) -> Self {
        let mut vars = BTreeSet::new();
        let mut tables = BTreeSet::new();
        for (name, _) in net.initial_env().vars() {
            vars.insert(name.to_string());
        }
        for (name, _) in net.initial_env().tables() {
            tables.insert(name.to_string());
        }
        for (_, t) in net.transitions() {
            if let Some(p) = t.predicate() {
                collect_expr(p, &mut vars, &mut tables);
            }
            if let Some(a) = t.action() {
                for asn in a.assignments() {
                    collect_expr(&asn.expr, &mut vars, &mut tables);
                    match &asn.target {
                        Target::Var(v) => {
                            vars.insert(v.clone());
                        }
                        Target::TableElem(t, idx) => {
                            tables.insert(t.clone());
                            collect_expr(idx, &mut vars, &mut tables);
                        }
                    }
                }
            }
            for d in [t.firing_time(), t.enabling_time()] {
                if let Delay::Expr(e) = d {
                    collect_expr(e, &mut vars, &mut tables);
                }
            }
        }
        SlotMap {
            vars: vars.into_iter().collect(),
            tables: tables.into_iter().collect(),
        }
    }

    /// Build a slot map from explicit name sets (tests and tools).
    pub fn from_names(
        vars: impl IntoIterator<Item = String>,
        tables: impl IntoIterator<Item = String>,
    ) -> Self {
        let vars: BTreeSet<String> = vars.into_iter().collect();
        let tables: BTreeSet<String> = tables.into_iter().collect();
        SlotMap {
            vars: vars.into_iter().collect(),
            tables: tables.into_iter().collect(),
        }
    }

    /// Slot index of a variable name, if mapped.
    pub fn var_slot(&self, name: &str) -> Option<u32> {
        self.vars
            .binary_search_by(|n| n.as_str().cmp(name))
            .ok()
            .map(|i| i as u32)
    }

    /// Slot index of a table name, if mapped.
    pub fn table_slot(&self, name: &str) -> Option<u32> {
        self.tables
            .binary_search_by(|n| n.as_str().cmp(name))
            .ok()
            .map(|i| i as u32)
    }

    /// Name of a variable slot.
    pub fn var_name(&self, slot: u32) -> &str {
        &self.vars[slot as usize]
    }

    /// Name of a table slot.
    pub fn table_name(&self, slot: u32) -> &str {
        &self.tables[slot as usize]
    }

    /// Number of variable slots.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of table slots.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

/// A dense, slot-indexed unpacking of an [`Env`].
///
/// `None` slots are names the map knows but the environment does not
/// currently bind (reads of them reproduce the interpreter's
/// `UnknownVariable` / `UnknownTable` errors).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnvSlots {
    vars: Vec<Option<Value>>,
    tables: Vec<Option<Vec<i64>>>,
}

impl EnvSlots {
    /// An empty slot file; size it with [`EnvSlots::load`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Unpack `env` into slot form. Reuses existing allocations.
    ///
    /// Every name bound by `env` must be present in `map` — guaranteed
    /// for environments reachable from the net the map was built for.
    pub fn load(&mut self, map: &SlotMap, env: &Env) {
        self.vars.clear();
        self.vars.resize(map.vars.len(), None);
        let mut it = env.vars();
        let mut cur = it.next();
        for (slot, name) in map.vars.iter().enumerate() {
            while let Some((n, v)) = cur {
                match n.cmp(name.as_str()) {
                    std::cmp::Ordering::Less => {
                        debug_assert!(false, "env var `{n}` missing from slot map");
                        cur = it.next();
                    }
                    std::cmp::Ordering::Equal => {
                        self.vars[slot] = Some(v);
                        cur = it.next();
                        break;
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
        }
        debug_assert!(cur.is_none(), "env var outside the slot map");

        if self.tables.len() != map.tables.len() {
            self.tables.resize(map.tables.len(), None);
        }
        let mut filled = vec![false; map.tables.len()];
        let mut it = env.tables();
        let mut cur = it.next();
        for (slot, name) in map.tables.iter().enumerate() {
            while let Some((n, data)) = cur {
                match n.cmp(name.as_str()) {
                    std::cmp::Ordering::Less => {
                        debug_assert!(false, "env table `{n}` missing from slot map");
                        cur = it.next();
                    }
                    std::cmp::Ordering::Equal => {
                        match &mut self.tables[slot] {
                            Some(buf) => {
                                buf.clear();
                                buf.extend_from_slice(data);
                            }
                            t @ None => *t = Some(data.to_vec()),
                        }
                        filled[slot] = true;
                        cur = it.next();
                        break;
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
        }
        debug_assert!(cur.is_none(), "env table outside the slot map");
        for (slot, f) in filled.iter().enumerate() {
            if !f {
                self.tables[slot] = None;
            }
        }
    }

    /// Copy another slot file into this one, reusing buffers.
    pub fn copy_from(&mut self, other: &EnvSlots) {
        self.vars.clear();
        self.vars.extend_from_slice(&other.vars);
        if self.tables.len() != other.tables.len() {
            self.tables.resize(other.tables.len(), None);
        }
        for (dst, src) in self.tables.iter_mut().zip(&other.tables) {
            match (dst, src) {
                (Some(d), Some(s)) => {
                    d.clear();
                    d.extend_from_slice(s);
                }
                (d, Some(s)) => *d = Some(s.clone()),
                (d, None) => *d = None,
            }
        }
    }

    /// Repack into an [`Env`] bit-identical to what the tree
    /// interpreter would have produced.
    pub fn to_env(&self, map: &SlotMap) -> Env {
        let mut env = Env::new();
        for (slot, v) in self.vars.iter().enumerate() {
            if let Some(v) = v {
                env.set_var(map.vars[slot].clone(), *v);
            }
        }
        for (slot, t) in self.tables.iter().enumerate() {
            if let Some(t) = t {
                env.define_table(map.tables[slot].clone(), t.clone());
            }
        }
        env
    }

    /// Read a variable slot.
    pub fn var(&self, slot: u32) -> Option<Value> {
        self.vars[slot as usize]
    }

    /// Write a variable slot.
    pub fn set_var(&mut self, slot: u32, value: Value) {
        self.vars[slot as usize] = Some(value);
    }

    /// Borrow a table slot's contents.
    pub fn table(&self, slot: u32) -> Option<&[i64]> {
        self.tables[slot as usize].as_deref()
    }
}

/// Register index. `u16` bounds the register file; expressions deep
/// enough to overflow it are rejected at lowering time.
type Reg = u16;

/// Non-short-circuit binary opcodes (a strict subset of [`BinOp`]:
/// `And`/`Or` lower to jumps instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArithOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

/// One bytecode instruction. See the module docs for the table.
#[derive(Debug, Clone, PartialEq)]
enum Instr {
    Const {
        dst: Reg,
        v: Value,
    },
    Load {
        dst: Reg,
        slot: u32,
    },
    LoadElem {
        dst: Reg,
        table: u32,
        idx: Reg,
    },
    Neg {
        dst: Reg,
        a: Reg,
    },
    Not {
        dst: Reg,
        a: Reg,
    },
    Bin {
        op: ArithOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    AsInt {
        a: Reg,
    },
    AsBool {
        dst: Reg,
        a: Reg,
    },
    Min {
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Max {
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Abs {
        dst: Reg,
        a: Reg,
    },
    Irand {
        dst: Reg,
        lo: Reg,
        hi: Reg,
    },
    Jump {
        to: u32,
    },
    JumpIfFalse {
        cond: Reg,
        to: u32,
    },
    JumpIfTrue {
        cond: Reg,
        to: u32,
    },
}

/// Reusable evaluation state: the register file. One `Scratch` serves
/// any number of programs; no allocation happens per evaluation once
/// it has grown to the largest register count in use.
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    regs: Vec<Value>,
}

impl Scratch {
    /// An empty register file.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Lowering failure. Expressions from the surface language never hit
/// these in practice; they bound pathological programmatic input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The expression needs more than `u16::MAX` registers.
    TooManyRegisters,
    /// A referenced name is absent from the slot map (the map was
    /// built for a different net).
    MissingSlot {
        /// The unmapped variable or table name.
        name: String,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::TooManyRegisters => {
                write!(f, "expression too deep: register file limit exceeded")
            }
            LowerError::MissingSlot { name } => {
                write!(f, "name `{name}` is not in the slot map")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// A compiled expression: flat bytecode leaving its result in
/// register 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    code: Vec<Instr>,
    regs: u32,
}

impl Program {
    /// Lower `expr` against `map`.
    ///
    /// # Errors
    ///
    /// [`LowerError`] if a name is unmapped or the expression exceeds
    /// the register file.
    pub fn compile(expr: &Expr, map: &SlotMap) -> Result<Program, LowerError> {
        let mut l = Lowerer {
            map,
            code: Vec::new(),
            regs: 1,
        };
        l.lower(expr, 0, 1)?;
        Ok(Program {
            code: l.code,
            regs: l.regs,
        })
    }

    /// The constant this program always produces, if it is a single
    /// folded constant.
    pub fn const_value(&self) -> Option<Value> {
        match self.code.as_slice() {
            [Instr::Const { dst: 0, v }] => Some(*v),
            _ => None,
        }
    }

    /// Evaluate with a randomness source. Mirrors [`Expr::eval`].
    ///
    /// # Errors
    ///
    /// The same [`EvalError`]s as the tree interpreter, bit-identically.
    pub fn eval(
        &self,
        slots: &EnvSlots,
        map: &SlotMap,
        scratch: &mut Scratch,
        rng: &mut dyn Randomness,
    ) -> Result<Value, EvalError> {
        self.run(slots, map, scratch, &mut Some(rng))
    }

    /// Evaluate without randomness. Mirrors [`Expr::eval_pure`].
    ///
    /// # Errors
    ///
    /// As [`Program::eval`], plus [`EvalError::RandomnessUnavailable`]
    /// if the program reaches an `irand`.
    pub fn eval_pure(
        &self,
        slots: &EnvSlots,
        map: &SlotMap,
        scratch: &mut Scratch,
    ) -> Result<Value, EvalError> {
        self.run(slots, map, scratch, &mut None)
    }

    fn run(
        &self,
        slots: &EnvSlots,
        map: &SlotMap,
        scratch: &mut Scratch,
        rng: &mut Option<&mut dyn Randomness>,
    ) -> Result<Value, EvalError> {
        let regs = &mut scratch.regs;
        if regs.len() < self.regs as usize {
            regs.resize(self.regs as usize, Value::Int(0));
        }
        let mut pc = 0usize;
        while let Some(i) = self.code.get(pc) {
            pc += 1;
            match *i {
                Instr::Const { dst, v } => regs[dst as usize] = v,
                Instr::Load { dst, slot } => {
                    regs[dst as usize] = slots.vars[slot as usize]
                        .ok_or_else(|| EvalError::UnknownVariable(map.var_name(slot).to_string()))?
                }
                Instr::LoadElem { dst, table, idx } => {
                    let i = regs[idx as usize].as_int()?;
                    let t = slots.tables[table as usize].as_deref().ok_or_else(|| {
                        EvalError::UnknownTable(map.table_name(table).to_string())
                    })?;
                    let v = usize::try_from(i)
                        .ok()
                        .and_then(|ix| t.get(ix).copied())
                        .ok_or_else(|| EvalError::IndexOutOfBounds {
                            table: map.table_name(table).to_string(),
                            index: i,
                            len: t.len(),
                        })?;
                    regs[dst as usize] = Value::Int(v);
                }
                Instr::Neg { dst, a } => {
                    regs[dst as usize] = regs[a as usize]
                        .as_int()?
                        .checked_neg()
                        .map(Value::Int)
                        .ok_or(EvalError::Overflow)?
                }
                Instr::Not { dst, a } => {
                    regs[dst as usize] = Value::Bool(!regs[a as usize].as_bool()?)
                }
                Instr::Bin { op, dst, a, b } => {
                    let va = regs[a as usize];
                    let vb = regs[b as usize];
                    regs[dst as usize] = match op {
                        ArithOp::Eq => Value::Bool(va == vb),
                        ArithOp::Ne => Value::Bool(va != vb),
                        _ => {
                            let x = va.as_int()?;
                            let y = vb.as_int()?;
                            match op {
                                ArithOp::Lt => Value::Bool(x < y),
                                ArithOp::Le => Value::Bool(x <= y),
                                ArithOp::Gt => Value::Bool(x > y),
                                ArithOp::Ge => Value::Bool(x >= y),
                                ArithOp::Add => {
                                    Value::Int(x.checked_add(y).ok_or(EvalError::Overflow)?)
                                }
                                ArithOp::Sub => {
                                    Value::Int(x.checked_sub(y).ok_or(EvalError::Overflow)?)
                                }
                                ArithOp::Mul => {
                                    Value::Int(x.checked_mul(y).ok_or(EvalError::Overflow)?)
                                }
                                ArithOp::Div => {
                                    if y == 0 {
                                        return Err(EvalError::DivisionByZero);
                                    }
                                    Value::Int(x.checked_div(y).ok_or(EvalError::Overflow)?)
                                }
                                ArithOp::Rem => {
                                    if y == 0 {
                                        return Err(EvalError::DivisionByZero);
                                    }
                                    Value::Int(x.checked_rem(y).ok_or(EvalError::Overflow)?)
                                }
                                ArithOp::Eq | ArithOp::Ne => unreachable!("handled above"),
                            }
                        }
                    };
                }
                Instr::AsInt { a } => {
                    regs[a as usize].as_int()?;
                }
                Instr::AsBool { dst, a } => {
                    regs[dst as usize] = Value::Bool(regs[a as usize].as_bool()?)
                }
                Instr::Min { dst, a, b } => {
                    let x = regs[a as usize].as_int()?;
                    let y = regs[b as usize].as_int()?;
                    regs[dst as usize] = Value::Int(x.min(y));
                }
                Instr::Max { dst, a, b } => {
                    let x = regs[a as usize].as_int()?;
                    let y = regs[b as usize].as_int()?;
                    regs[dst as usize] = Value::Int(x.max(y));
                }
                Instr::Abs { dst, a } => {
                    regs[dst as usize] = regs[a as usize]
                        .as_int()?
                        .checked_abs()
                        .map(Value::Int)
                        .ok_or(EvalError::Overflow)?
                }
                Instr::Irand { dst, lo, hi } => {
                    let lo = regs[lo as usize].as_int()?;
                    let hi = regs[hi as usize].as_int()?;
                    if lo > hi {
                        return Err(EvalError::EmptyRandomRange { lo, hi });
                    }
                    match rng {
                        Some(r) => regs[dst as usize] = Value::Int(r.int_in_range(lo, hi)),
                        None => return Err(EvalError::RandomnessUnavailable),
                    }
                }
                Instr::Jump { to } => pc = to as usize,
                Instr::JumpIfFalse { cond, to } => {
                    if !regs[cond as usize].as_bool()? {
                        pc = to as usize;
                    }
                }
                Instr::JumpIfTrue { cond, to } => {
                    if regs[cond as usize].as_bool()? {
                        pc = to as usize;
                    }
                }
            }
        }
        Ok(scratch.regs[0])
    }
}

struct Lowerer<'a> {
    map: &'a SlotMap,
    code: Vec<Instr>,
    regs: u32,
}

impl Lowerer<'_> {
    fn reg(&mut self, r: u32) -> Result<Reg, LowerError> {
        if r >= u32::from(u16::MAX) {
            return Err(LowerError::TooManyRegisters);
        }
        if r >= self.regs {
            self.regs = r + 1;
        }
        Ok(r as Reg)
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, to: u32) {
        match &mut self.code[at] {
            Instr::Jump { to: t }
            | Instr::JumpIfFalse { to: t, .. }
            | Instr::JumpIfTrue { to: t, .. } => *t = to,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Lower `e` so its value lands in register `dst`; registers
    /// `next..` are free for temporaries.
    fn lower(&mut self, e: &Expr, dst: u32, next: u32) -> Result<(), LowerError> {
        if let Some(v) = e.const_value() {
            let dst = self.reg(dst)?;
            self.code.push(Instr::Const { dst, v });
            return Ok(());
        }
        match e {
            Expr::Int(v) => {
                let dst = self.reg(dst)?;
                self.code.push(Instr::Const {
                    dst,
                    v: Value::Int(*v),
                });
            }
            Expr::Bool(b) => {
                let dst = self.reg(dst)?;
                self.code.push(Instr::Const {
                    dst,
                    v: Value::Bool(*b),
                });
            }
            Expr::Var(name) => {
                let slot = self
                    .map
                    .var_slot(name)
                    .ok_or_else(|| LowerError::MissingSlot { name: name.clone() })?;
                let dst = self.reg(dst)?;
                self.code.push(Instr::Load { dst, slot });
            }
            Expr::Index(table, idx) => {
                let slot = self
                    .map
                    .table_slot(table)
                    .ok_or_else(|| LowerError::MissingSlot {
                        name: table.clone(),
                    })?;
                self.lower(idx, dst, next)?;
                let dst = self.reg(dst)?;
                self.code.push(Instr::LoadElem {
                    dst,
                    table: slot,
                    idx: dst,
                });
            }
            Expr::Unary(op, a) => {
                self.lower(a, dst, next)?;
                let dst = self.reg(dst)?;
                self.code.push(match op {
                    UnaryOp::Neg => Instr::Neg { dst, a: dst },
                    UnaryOp::Not => Instr::Not { dst, a: dst },
                });
            }
            Expr::Binary(BinOp::And, a, b) => match a.const_value() {
                // `false && b` never evaluates `b` in the interpreter,
                // so folding the whole conjunction is sound; `true && b`
                // reduces to `b` coerced to bool.
                Some(Value::Bool(false)) => {
                    let dst = self.reg(dst)?;
                    self.code.push(Instr::Const {
                        dst,
                        v: Value::Bool(false),
                    });
                }
                Some(Value::Bool(true)) => {
                    self.lower(b, dst, next)?;
                    let dst = self.reg(dst)?;
                    self.code.push(Instr::AsBool { dst, a: dst });
                }
                _ => {
                    self.lower(a, dst, next)?;
                    let dst = self.reg(dst)?;
                    let j = self.code.len();
                    self.code.push(Instr::JumpIfFalse { cond: dst, to: 0 });
                    self.lower(b, dst.into(), next)?;
                    self.code.push(Instr::AsBool { dst, a: dst });
                    let to = self.here();
                    self.patch(j, to);
                }
            },
            Expr::Binary(BinOp::Or, a, b) => match a.const_value() {
                Some(Value::Bool(true)) => {
                    let dst = self.reg(dst)?;
                    self.code.push(Instr::Const {
                        dst,
                        v: Value::Bool(true),
                    });
                }
                Some(Value::Bool(false)) => {
                    self.lower(b, dst, next)?;
                    let dst = self.reg(dst)?;
                    self.code.push(Instr::AsBool { dst, a: dst });
                }
                _ => {
                    self.lower(a, dst, next)?;
                    let dst = self.reg(dst)?;
                    let j = self.code.len();
                    self.code.push(Instr::JumpIfTrue { cond: dst, to: 0 });
                    self.lower(b, dst.into(), next)?;
                    self.code.push(Instr::AsBool { dst, a: dst });
                    let to = self.here();
                    self.patch(j, to);
                }
            },
            Expr::Binary(op, a, b) => {
                let arith = match op {
                    BinOp::Eq => ArithOp::Eq,
                    BinOp::Ne => ArithOp::Ne,
                    BinOp::Lt => ArithOp::Lt,
                    BinOp::Le => ArithOp::Le,
                    BinOp::Gt => ArithOp::Gt,
                    BinOp::Ge => ArithOp::Ge,
                    BinOp::Add => ArithOp::Add,
                    BinOp::Sub => ArithOp::Sub,
                    BinOp::Mul => ArithOp::Mul,
                    BinOp::Div => ArithOp::Div,
                    BinOp::Rem => ArithOp::Rem,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                self.lower(a, dst, next)?;
                self.lower(b, next, next + 1)?;
                let (dst, tmp) = (self.reg(dst)?, self.reg(next)?);
                self.code.push(Instr::Bin {
                    op: arith,
                    dst,
                    a: dst,
                    b: tmp,
                });
            }
            Expr::Call(func, args) => {
                // The interpreter asserts each argument is an integer
                // *before* evaluating the next one; `AsInt` preserves
                // that interleaving.
                match func {
                    Func::Abs => {
                        self.lower(&args[0], dst, next)?;
                        let dst = self.reg(dst)?;
                        self.code.push(Instr::AsInt { a: dst });
                        self.code.push(Instr::Abs { dst, a: dst });
                    }
                    Func::Min | Func::Max | Func::Irand => {
                        self.lower(&args[0], dst, next)?;
                        let d = self.reg(dst)?;
                        self.code.push(Instr::AsInt { a: d });
                        self.lower(&args[1], next, next + 1)?;
                        let tmp = self.reg(next)?;
                        self.code.push(Instr::AsInt { a: tmp });
                        self.code.push(match func {
                            Func::Min => Instr::Min {
                                dst: d,
                                a: d,
                                b: tmp,
                            },
                            Func::Max => Instr::Max {
                                dst: d,
                                a: d,
                                b: tmp,
                            },
                            Func::Irand => Instr::Irand {
                                dst: d,
                                lo: d,
                                hi: tmp,
                            },
                            Func::Abs => unreachable!("handled above"),
                        });
                    }
                }
            }
            Expr::If(c, a, b) => match c.const_value() {
                Some(Value::Bool(true)) => self.lower(a, dst, next)?,
                Some(Value::Bool(false)) => self.lower(b, dst, next)?,
                _ => {
                    self.lower(c, dst, next)?;
                    let d = self.reg(dst)?;
                    let jf = self.code.len();
                    self.code.push(Instr::JumpIfFalse { cond: d, to: 0 });
                    self.lower(a, dst, next)?;
                    let j = self.code.len();
                    self.code.push(Instr::Jump { to: 0 });
                    let to = self.here();
                    self.patch(jf, to);
                    self.lower(b, dst, next)?;
                    let to = self.here();
                    self.patch(j, to);
                }
            },
        }
        Ok(())
    }
}

impl Expr {
    /// The value this expression always evaluates to, if it is
    /// *provably constant*: no variable or table reads, no `irand`,
    /// and evaluation succeeds. Expressions that would error (overflow,
    /// division by zero, type mismatch) are *not* considered constant,
    /// so folding never changes error behaviour or timing.
    pub fn const_value(&self) -> Option<Value> {
        self.const_eval().and_then(Result::ok)
    }

    /// Like [`Expr::const_value`], but keeps the failure case apart:
    /// `Some(Err(e))` means the expression reads no variable, table, or
    /// randomness and *always* fails with `e` when evaluated — a
    /// guaranteed runtime [`EvalError`](super::EvalError) worth flagging
    /// statically. `None` means the value depends on the environment.
    pub fn const_eval(&self) -> Option<Result<Value, super::EvalError>> {
        fn is_static(e: &Expr) -> bool {
            match e {
                Expr::Int(_) | Expr::Bool(_) => true,
                Expr::Var(_) | Expr::Index(..) => false,
                Expr::Unary(_, a) => is_static(a),
                Expr::Binary(_, a, b) => is_static(a) && is_static(b),
                Expr::Call(f, args) => *f != Func::Irand && args.iter().all(is_static),
                Expr::If(c, a, b) => is_static(c) && is_static(a) && is_static(b),
            }
        }
        if !is_static(self) {
            return None;
        }
        Some(self.eval_pure(&Env::new()))
    }
}

/// One compiled assignment step.
#[derive(Debug, Clone, PartialEq)]
enum Step {
    SetVar {
        slot: u32,
        value: Program,
    },
    SetElem {
        table: u32,
        index: Program,
        value: Program,
    },
}

/// A write performed by [`ActionProgram::apply_logged`], in execution
/// order. `Var` entries are the scalar assignments simulators put in
/// traces; `Elem` entries let callers mirror table writes elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub enum Write {
    /// `vars[slot] = value`.
    Var {
        /// Variable slot written.
        slot: u32,
        /// Value stored.
        value: Value,
    },
    /// `tables[table][index] = value`.
    Elem {
        /// Table slot written.
        table: u32,
        /// Element index written.
        index: i64,
        /// Value stored.
        value: i64,
    },
}

/// A compiled [`Action`]: assignments over slots, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionProgram {
    steps: Vec<Step>,
}

impl ActionProgram {
    /// Lower `action` against `map`.
    ///
    /// # Errors
    ///
    /// [`LowerError`] as for [`Program::compile`].
    pub fn compile(action: &Action, map: &SlotMap) -> Result<ActionProgram, LowerError> {
        let mut steps = Vec::with_capacity(action.assignments().len());
        for a in action.assignments() {
            steps.push(compile_assignment(a, map)?);
        }
        Ok(ActionProgram { steps })
    }

    /// Apply with randomness. Mirrors [`Action::apply`].
    ///
    /// # Errors
    ///
    /// The same [`EvalError`]s as the tree interpreter.
    pub fn apply(
        &self,
        slots: &mut EnvSlots,
        map: &SlotMap,
        scratch: &mut Scratch,
        rng: &mut dyn Randomness,
    ) -> Result<(), EvalError> {
        self.run(slots, map, scratch, &mut Some(rng), None)
    }

    /// Apply without randomness. Mirrors [`Action::apply_pure`].
    ///
    /// # Errors
    ///
    /// As [`ActionProgram::apply`], plus
    /// [`EvalError::RandomnessUnavailable`] on `irand`.
    pub fn apply_pure(
        &self,
        slots: &mut EnvSlots,
        map: &SlotMap,
        scratch: &mut Scratch,
    ) -> Result<(), EvalError> {
        self.run(slots, map, scratch, &mut None, None)
    }

    /// Apply with randomness, appending every write to `log` in
    /// execution order. Mirrors [`Action::apply_logged`] (whose log
    /// holds only the `Var` writes; `Elem` writes are included here so
    /// callers can replay table mutations into a mirror [`Env`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ActionProgram::apply`].
    pub fn apply_logged(
        &self,
        slots: &mut EnvSlots,
        map: &SlotMap,
        scratch: &mut Scratch,
        rng: &mut dyn Randomness,
        log: &mut Vec<Write>,
    ) -> Result<(), EvalError> {
        self.run(slots, map, scratch, &mut Some(rng), Some(log))
    }

    fn run(
        &self,
        slots: &mut EnvSlots,
        map: &SlotMap,
        scratch: &mut Scratch,
        rng: &mut Option<&mut dyn Randomness>,
        mut log: Option<&mut Vec<Write>>,
    ) -> Result<(), EvalError> {
        for step in &self.steps {
            match step {
                Step::SetVar { slot, value } => {
                    let v = value.run(slots, map, scratch, rng)?;
                    slots.vars[*slot as usize] = Some(v);
                    if let Some(log) = log.as_deref_mut() {
                        log.push(Write::Var {
                            slot: *slot,
                            value: v,
                        });
                    }
                }
                Step::SetElem {
                    table,
                    index,
                    value,
                } => {
                    // Interpreter order: value expr, index expr, index
                    // as_int, value as_int, table lookup, bounds check.
                    let v = value.run(slots, map, scratch, rng)?;
                    let i = index.run(slots, map, scratch, rng)?.as_int()?;
                    let x = v.as_int()?;
                    let t = slots.tables[*table as usize].as_mut().ok_or_else(|| {
                        EvalError::UnknownTable(map.table_name(*table).to_string())
                    })?;
                    let len = t.len();
                    let cell = usize::try_from(i).ok().and_then(|ix| t.get_mut(ix)).ok_or(
                        EvalError::IndexOutOfBounds {
                            table: map.table_name(*table).to_string(),
                            index: i,
                            len,
                        },
                    )?;
                    *cell = x;
                    if let Some(log) = log.as_deref_mut() {
                        log.push(Write::Elem {
                            table: *table,
                            index: i,
                            value: x,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

fn compile_assignment(a: &Assignment, map: &SlotMap) -> Result<Step, LowerError> {
    let value = Program::compile(&a.expr, map)?;
    Ok(match &a.target {
        Target::Var(name) => Step::SetVar {
            slot: map
                .var_slot(name)
                .ok_or_else(|| LowerError::MissingSlot { name: name.clone() })?,
            value,
        },
        Target::TableElem(table, idx) => Step::SetElem {
            table: map
                .table_slot(table)
                .ok_or_else(|| LowerError::MissingSlot {
                    name: table.clone(),
                })?,
            index: Program::compile(idx, map)?,
            value,
        },
    })
}

fn collect_expr(e: &Expr, vars: &mut BTreeSet<String>, tables: &mut BTreeSet<String>) {
    match e {
        Expr::Int(_) | Expr::Bool(_) => {}
        Expr::Var(v) => {
            vars.insert(v.clone());
        }
        Expr::Index(t, i) => {
            tables.insert(t.clone());
            collect_expr(i, vars, tables);
        }
        Expr::Unary(_, a) => collect_expr(a, vars, tables),
        Expr::Binary(_, a, b) => {
            collect_expr(a, vars, tables);
            collect_expr(b, vars, tables);
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_expr(a, vars, tables);
            }
        }
        Expr::If(c, a, b) => {
            collect_expr(c, vars, tables);
            collect_expr(a, vars, tables);
            collect_expr(b, vars, tables);
        }
    }
}

/// All compiled programs of one transition. `None` means the
/// transition has no such expression (e.g. a `Delay::Fixed` delay,
/// which keeps its constant fast path).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTransition {
    /// Compiled predicate, if any.
    pub predicate: Option<Program>,
    /// Compiled action, if any.
    pub action: Option<ActionProgram>,
    /// Compiled firing-time expression (`None` for `Delay::Fixed`).
    pub firing: Option<Program>,
    /// Compiled enabling-time expression (`None` for `Delay::Fixed`).
    pub enabling: Option<Program>,
}

/// Compile-time lowering failure, naming the transition and the
/// offending expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// The transition whose expression failed to lower.
    pub transition: String,
    /// Display form of the offending expression or action.
    pub expr: String,
    /// The underlying lowering error.
    pub source: LowerError,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "failed to compile `{}` of transition `{}`: {}",
            self.expr, self.transition, self.source
        )
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Every transition of a net compiled against one shared [`SlotMap`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledNet {
    /// The shared slot map.
    pub map: SlotMap,
    /// Per-transition programs, indexed by `TransitionId::index()`.
    pub transitions: Vec<CompiledTransition>,
}

impl CompiledNet {
    /// Compile every expression in `net`.
    ///
    /// # Errors
    ///
    /// [`CompileError`] naming the first transition whose expression
    /// fails to lower.
    pub fn compile(net: &Net) -> Result<CompiledNet, CompileError> {
        let map = SlotMap::for_net(net);
        let mut transitions = Vec::with_capacity(net.transition_count());
        for (_, t) in net.transitions() {
            let wrap = |expr: String, source: LowerError| CompileError {
                transition: t.name().to_string(),
                expr,
                source,
            };
            let predicate = match t.predicate() {
                Some(p) => Some(Program::compile(p, &map).map_err(|e| wrap(p.to_string(), e))?),
                None => None,
            };
            let action = match t.action() {
                Some(a) => {
                    Some(ActionProgram::compile(a, &map).map_err(|e| wrap(a.to_string(), e))?)
                }
                None => None,
            };
            let firing = match t.firing_time() {
                Delay::Expr(e) => {
                    Some(Program::compile(e, &map).map_err(|err| wrap(e.to_string(), err))?)
                }
                Delay::Fixed(_) => None,
            };
            let enabling = match t.enabling_time() {
                Delay::Expr(e) => {
                    Some(Program::compile(e, &map).map_err(|err| wrap(e.to_string(), err))?)
                }
                Delay::Fixed(_) => None,
            };
            transitions.push(CompiledTransition {
                predicate,
                action,
                firing,
                enabling,
            });
        }
        Ok(CompiledNet { map, transitions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CyclingRandomness;

    fn map_for(env: &Env, extra_vars: &[&str]) -> SlotMap {
        SlotMap::from_names(
            env.vars()
                .map(|(n, _)| n.to_string())
                .chain(extra_vars.iter().map(|s| s.to_string())),
            env.tables().map(|(n, _)| n.to_string()),
        )
    }

    fn check(src: &str, env: &Env) {
        let e = Expr::parse(src).unwrap();
        let map = map_for(env, &[]);
        let p = Program::compile(&e, &map).unwrap();
        let mut slots = EnvSlots::new();
        slots.load(&map, env);
        let mut scratch = Scratch::new();
        assert_eq!(
            p.eval_pure(&slots, &map, &mut scratch),
            e.eval_pure(env),
            "mismatch for `{src}`"
        );
    }

    #[test]
    fn values_match_interpreter() {
        let mut env = Env::new();
        env.set_var("x", Value::Int(5));
        env.set_var("flag", Value::Bool(true));
        env.define_table("t", vec![10, 20, 30]);
        for src in [
            "2 + 3 * 4",
            "10 / 3",
            "10 % 3",
            "-x",
            "x > 0 && flag",
            "x < 0 || !flag",
            "x == 5",
            "flag != false",
            "t[x - 4]",
            "x > 0 ? t[0] : t[9]",
            "min(x, 3) + max(x, 7) + abs(0 - x)",
            "true == true",
            "1 == true",
        ] {
            check(src, &env);
        }
    }

    #[test]
    fn errors_match_interpreter() {
        let mut env = Env::new();
        env.set_var("x", Value::Int(5));
        env.define_table("t", vec![1]);
        for src in [
            "1 / 0",
            "1 % 0",
            "9223372036854775807 + 1",
            "-(-9223372036854775807 - 1)",
            "abs(-9223372036854775807 - 1)",
            "true + 1",
            "!x",
            "x ? 1 : 2",
            "missing + 1",
            "t[5]",
            "t[-1]",
            "u[0]",
            "x && true",
            "true && x",
            "irand(1, 2)",
            "irand(2, 1)",
            "irand(true, u[0])",
        ] {
            let e = Expr::parse(src).unwrap();
            let map = SlotMap::from_names(
                ["x".to_string(), "missing".to_string()],
                ["t".to_string(), "u".to_string()],
            );
            let p = Program::compile(&e, &map).unwrap();
            let mut slots = EnvSlots::new();
            slots.load(&map, &env);
            let mut scratch = Scratch::new();
            assert_eq!(
                p.eval_pure(&slots, &map, &mut scratch),
                e.eval_pure(&env),
                "error mismatch for `{src}`"
            );
        }
    }

    #[test]
    fn short_circuit_skips_untaken_side() {
        // `missing` is unmapped entirely, yet never reached.
        let env = Env::new();
        let map = SlotMap::from_names(["missing".to_string()], []);
        for src in ["false && missing > 0", "true || missing > 0"] {
            check_with(src, &env, &map);
        }
    }

    fn check_with(src: &str, env: &Env, map: &SlotMap) {
        let e = Expr::parse(src).unwrap();
        let p = Program::compile(&e, map).unwrap();
        let mut slots = EnvSlots::new();
        slots.load(map, env);
        let mut scratch = Scratch::new();
        assert_eq!(
            p.eval_pure(&slots, map, &mut scratch),
            e.eval_pure(env),
            "mismatch for `{src}`"
        );
    }

    #[test]
    fn irand_draw_order_matches() {
        let env = Env::new();
        let map = SlotMap::from_names([], []);
        let e = Expr::parse("irand(0, 3) * 10 + irand(0, 3)").unwrap();
        let p = Program::compile(&e, &map).unwrap();
        let mut slots = EnvSlots::new();
        slots.load(&map, &env);
        let mut scratch = Scratch::new();
        let mut r1 = CyclingRandomness::new();
        let mut r2 = CyclingRandomness::new();
        for _ in 0..8 {
            assert_eq!(
                p.eval(&slots, &map, &mut scratch, &mut r1),
                e.eval(&env, &mut r2)
            );
        }
    }

    #[test]
    fn const_folding_produces_single_const() {
        let map = SlotMap::from_names([], []);
        let e = Expr::parse("2 * 3 + min(4, 5)").unwrap();
        let p = Program::compile(&e, &map).unwrap();
        assert_eq!(p.const_value(), Some(Value::Int(10)));
        // Erroring expressions must NOT fold.
        let e = Expr::parse("1 / 0").unwrap();
        assert_eq!(e.const_value(), None);
        let p = Program::compile(&e, &map).unwrap();
        assert_eq!(p.const_value(), None);
        // Random expressions must NOT fold.
        assert_eq!(Expr::parse("irand(1, 1)").unwrap().const_value(), None);
    }

    #[test]
    fn actions_match_interpreter() {
        let mut env = Env::new();
        env.set_var("x", Value::Int(1));
        env.define_table("t", vec![0, 0, 0]);
        let a = Action::parse("x = x + 1; t[x] = x * 10; y = t[x] > 0;").unwrap();
        let map = SlotMap::from_names(["x".to_string(), "y".to_string()], ["t".to_string()]);
        let prog = ActionProgram::compile(&a, &map).unwrap();

        let mut slots = EnvSlots::new();
        slots.load(&map, &env);
        let mut scratch = Scratch::new();
        prog.apply_pure(&mut slots, &map, &mut scratch).unwrap();

        let mut expect = env.clone();
        a.apply_pure(&mut expect).unwrap();
        assert_eq!(slots.to_env(&map), expect);
    }

    #[test]
    fn action_errors_match_interpreter() {
        let mut env = Env::new();
        env.define_table("t", vec![0]);
        for src in [
            "t[3] = 1;",
            "t[0] = true;",
            "t[true] = 1;",
            "u[0] = 1;",
            "x = 1 / 0;",
        ] {
            let a = Action::parse(src).unwrap();
            let map = SlotMap::from_names(["x".to_string()], ["t".to_string(), "u".to_string()]);
            let prog = ActionProgram::compile(&a, &map).unwrap();
            let mut slots = EnvSlots::new();
            slots.load(&map, &env);
            let mut scratch = Scratch::new();
            let got = prog.apply_pure(&mut slots, &map, &mut scratch);
            let mut expect = env.clone();
            let want = a.apply_pure(&mut expect);
            assert_eq!(got, want, "error mismatch for `{src}`");
            assert_eq!(slots.to_env(&map), expect, "env mismatch for `{src}`");
        }
    }

    #[test]
    fn apply_logged_reports_writes_in_order() {
        let mut env = Env::new();
        env.set_var("x", Value::Int(0));
        env.define_table("t", vec![0, 0]);
        let a = Action::parse("x = 7; t[1] = 9; x = x + 1;").unwrap();
        let map = SlotMap::from_names(["x".to_string()], ["t".to_string()]);
        let prog = ActionProgram::compile(&a, &map).unwrap();
        let mut slots = EnvSlots::new();
        slots.load(&map, &env);
        let mut scratch = Scratch::new();
        let mut log = Vec::new();
        let mut rng = CyclingRandomness::new();
        prog.apply_logged(&mut slots, &map, &mut scratch, &mut rng, &mut log)
            .unwrap();
        let x = map.var_slot("x").unwrap();
        let t = map.table_slot("t").unwrap();
        assert_eq!(
            log,
            vec![
                Write::Var {
                    slot: x,
                    value: Value::Int(7)
                },
                Write::Elem {
                    table: t,
                    index: 1,
                    value: 9
                },
                Write::Var {
                    slot: x,
                    value: Value::Int(8)
                },
            ]
        );
    }

    #[test]
    fn slots_roundtrip_env_bit_identically() {
        let mut env = Env::new();
        env.set_var("b", Value::Bool(true));
        env.set_var("a", Value::Int(-3));
        env.define_table("zz", vec![1, 2]);
        env.define_table("aa", vec![]);
        let map = map_for(&env, &["unbound"]);
        let mut slots = EnvSlots::new();
        slots.load(&map, &env);
        assert_eq!(slots.to_env(&map), env);
        // Reload after mutation reuses buffers and stays identical.
        let mut env2 = env.clone();
        env2.set_var("a", Value::Int(9));
        slots.load(&map, &env2);
        assert_eq!(slots.to_env(&map), env2);
        let mut copy = EnvSlots::new();
        copy.copy_from(&slots);
        assert_eq!(copy.to_env(&map), env2);
    }

    #[test]
    fn compiled_net_indexes_by_transition() {
        let mut b = Net::builder("n");
        b.place("p", 1);
        b.var("x", 0);
        b.transition("t")
            .input("p")
            .output("p")
            .predicate_str("x < 3")
            .unwrap()
            .action_str("x = x + 1;")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        let compiled = CompiledNet::compile(&net).unwrap();
        assert_eq!(compiled.transitions.len(), 1);
        let ct = &compiled.transitions[0];
        assert!(ct.predicate.is_some());
        assert!(ct.action.is_some());
        assert!(ct.firing.is_none());
        assert!(ct.enabling.is_none());
    }

    #[test]
    fn missing_slot_is_reported_with_transition_name() {
        let e = Expr::parse("ghost + 1").unwrap();
        let map = SlotMap::from_names([], []);
        assert_eq!(
            Program::compile(&e, &map),
            Err(LowerError::MissingSlot {
                name: "ghost".to_string()
            })
        );
    }
}
