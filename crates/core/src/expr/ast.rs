//! Abstract syntax for the expression language.

use std::fmt;

/// Binary operators, in increasing binding strength groups:
/// `||` < `&&` < comparisons < `+ -` < `* / %`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Logical or (short-circuiting).
    Or,
    /// Logical and (short-circuiting).
    And,
    /// Equality, `==`.
    Eq,
    /// Inequality, `!=`.
    Ne,
    /// Less than, `<`.
    Lt,
    /// Less or equal, `<=`.
    Le,
    /// Greater than, `>`.
    Gt,
    /// Greater or equal, `>=`.
    Ge,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer division (truncating).
    Div,
    /// Remainder.
    Rem,
}

impl BinOp {
    /// Surface-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation, `-x`.
    Neg,
    /// Logical negation, `!x`.
    Not,
}

/// Built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// `irand(lo, hi)`: uniform random integer in `lo..=hi` — the paper's
    /// instruction-type selector (§3).
    Irand,
    /// `min(a, b)`.
    Min,
    /// `max(a, b)`.
    Max,
    /// `abs(a)`.
    Abs,
}

impl Func {
    /// Surface-syntax name.
    pub fn name(self) -> &'static str {
        match self {
            Func::Irand => "irand",
            Func::Min => "min",
            Func::Max => "max",
            Func::Abs => "abs",
        }
    }

    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            Func::Irand | Func::Min | Func::Max => 2,
            Func::Abs => 1,
        }
    }
}

/// An expression over the variable environment.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal (`true` / `false`).
    Bool(bool),
    /// Variable reference.
    Var(String),
    /// Table element, `table[index]`.
    Index(String, Box<Expr>),
    /// Unary application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Built-in function call.
    Call(Func, Vec<Expr>),
    /// Conditional, `cond ? a : b`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Parse an expression from source text.
    ///
    /// # Errors
    ///
    /// Returns [`super::ParseExprError`] on malformed input.
    ///
    /// # Example
    ///
    /// ```
    /// use pnut_core::expr::Expr;
    ///
    /// # fn main() -> Result<(), pnut_core::ParseExprError> {
    /// let e = Expr::parse("needed > 0 && mode != 3")?;
    /// assert!(e.uses_var("needed"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(src: &str) -> Result<Self, super::ParseExprError> {
        super::parser::parse_expr(src)
    }

    /// Convenience: an integer literal.
    pub fn int(v: i64) -> Self {
        Expr::Int(v)
    }

    /// Convenience: a variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Var(name.into())
    }

    /// Whether the expression (transitively) calls `irand`.
    pub fn uses_random(&self) -> bool {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => false,
            Expr::Index(_, i) => i.uses_random(),
            Expr::Unary(_, e) => e.uses_random(),
            Expr::Binary(_, a, b) => a.uses_random() || b.uses_random(),
            Expr::Call(f, args) => *f == Func::Irand || args.iter().any(Expr::uses_random),
            Expr::If(c, a, b) => c.uses_random() || a.uses_random() || b.uses_random(),
        }
    }

    /// Whether the expression references variable `name`.
    pub fn uses_var(&self, name: &str) -> bool {
        match self {
            Expr::Int(_) | Expr::Bool(_) => false,
            Expr::Var(v) => v == name,
            Expr::Index(_, i) => i.uses_var(name),
            Expr::Unary(_, e) => e.uses_var(name),
            Expr::Binary(_, a, b) => a.uses_var(name) || b.uses_var(name),
            Expr::Call(_, args) => args.iter().any(|a| a.uses_var(name)),
            Expr::If(c, a, b) => c.uses_var(name) || a.uses_var(name) || b.uses_var(name),
        }
    }

    /// Collect all variable names referenced by the expression.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int(_) | Expr::Bool(_) => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Index(_, i) => i.collect_vars(out),
            Expr::Unary(_, e) => e.collect_vars(out),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::If(c, a, b) => {
                c.collect_vars(out);
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Expr::If(..) => 0,
            Expr::Binary(op, ..) => match op {
                BinOp::Or => 1,
                BinOp::And => 2,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
                BinOp::Add | BinOp::Sub => 4,
                BinOp::Mul | BinOp::Div | BinOp::Rem => 5,
            },
            Expr::Unary(..) => 6,
            _ => 7,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
        let prec = self.precedence();
        let parens = prec < min;
        if parens {
            write!(f, "(")?;
        }
        match self {
            Expr::Int(v) => write!(f, "{v}")?,
            Expr::Bool(b) => write!(f, "{b}")?,
            Expr::Var(v) => write!(f, "{v}")?,
            Expr::Index(t, i) => {
                write!(f, "{t}[")?;
                i.fmt_prec(f, 0)?;
                write!(f, "]")?;
            }
            Expr::Unary(op, e) => {
                write!(f, "{}", if *op == UnaryOp::Neg { "-" } else { "!" })?;
                e.fmt_prec(f, 6)?;
            }
            Expr::Binary(op, a, b) => {
                // Comparisons do not chain (the grammar rejects
                // `a < b < c`), so both operands need parentheses when
                // they are themselves comparisons.
                let non_assoc = matches!(
                    op,
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                );
                a.fmt_prec(f, if non_assoc { prec + 1 } else { prec })?;
                write!(f, " {} ", op.symbol())?;
                b.fmt_prec(f, prec + 1)?;
            }
            Expr::Call(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")?;
            }
            Expr::If(c, a, b) => {
                c.fmt_prec(f, 1)?;
                write!(f, " ? ")?;
                a.fmt_prec(f, 1)?;
                write!(f, " : ")?;
                b.fmt_prec(f, 0)?;
            }
        }
        if parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// Assignment target: a variable or a table element.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// Assign to a variable.
    Var(String),
    /// Assign to `table[index]`.
    TableElem(String, Box<Expr>),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Var(v) => write!(f, "{v}"),
            Target::TableElem(t, i) => write!(f, "{t}[{i}]"),
        }
    }
}

/// A single `target = expr` assignment within an [`super::Action`].
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Where the value is stored.
    pub target: Target,
    /// The value computed.
    pub expr: Expr,
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.target, self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_respects_precedence() {
        let e = Expr::parse("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_string(), "(1 + 2) * 3");
        let e = Expr::parse("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "1 + 2 * 3");
    }

    #[test]
    fn variables_are_collected_sorted_unique() {
        let e = Expr::parse("b + a + b + t[c]").unwrap();
        assert_eq!(e.variables(), vec!["a", "b", "c"]);
    }

    #[test]
    fn uses_random_detects_nested_irand() {
        let e = Expr::parse("1 + min(2, irand(0, 3))").unwrap();
        assert!(e.uses_random());
        let e = Expr::parse("1 + min(2, 3)").unwrap();
        assert!(!e.uses_random());
    }

    #[test]
    fn func_metadata() {
        assert_eq!(Func::Irand.arity(), 2);
        assert_eq!(Func::Abs.arity(), 1);
        assert_eq!(Func::Min.name(), "min");
    }
}
