//! Fluent construction of nets.
//!
//! Modeling with P-NUT is "enumerating all events in the system and
//! listing their pre- and post-conditions; the order in which the events
//! are listed is irrelevant" (paper §1). The builder mirrors this: places
//! and transitions are declared in any order by name, and name resolution
//! plus validation happen once in [`NetBuilder::build`].

use crate::error::NetError;
use crate::expr::{Action, Env, Expr, Value};
use crate::net::{Delay, Net, Place, PlaceId, Transition};

/// Constant-fold an expression delay at build time: a `Delay::Expr`
/// whose expression provably evaluates to a non-negative integer (no
/// variables, tables, or `irand`) is stored as `Delay::Fixed`, so it
/// takes the constant fast path everywhere instead of paying per-state
/// resolution. Expressions that would error — or fold to a negative or
/// boolean value — are kept symbolic so their runtime error behaviour
/// is unchanged.
fn fold_delay(d: &Delay) -> Delay {
    if let Delay::Expr(e) = d {
        if let Some(Value::Int(v)) = e.const_value() {
            if let Ok(ticks) = u64::try_from(v) {
                return Delay::Fixed(ticks);
            }
        }
    }
    d.clone()
}

#[derive(Debug, Clone)]
struct TransitionDecl {
    name: String,
    inputs: Vec<(String, u32)>,
    outputs: Vec<(String, u32)>,
    inhibitors: Vec<(String, u32)>,
    firing_time: Delay,
    enabling_time: Delay,
    frequency: f64,
    predicate: Option<Expr>,
    action: Option<Action>,
    max_concurrent: Option<u32>,
}

/// Builder for [`Net`]; see the [crate-level example](crate).
#[derive(Debug, Clone, Default)]
pub struct NetBuilder {
    name: String,
    places: Vec<(String, u32)>,
    transitions: Vec<TransitionDecl>,
    env: Env,
}

impl NetBuilder {
    /// Start a net with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NetBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declare a place with its initial token count. Returns `&mut self`
    /// for chaining.
    pub fn place(&mut self, name: impl Into<String>, initial_tokens: u32) -> &mut Self {
        self.places.push((name.into(), initial_tokens));
        self
    }

    /// Declare several token-free places at once.
    pub fn places_empty<I, S>(&mut self, names: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for n in names {
            self.place(n, 0);
        }
        self
    }

    /// Declare an integer variable in the initial environment.
    pub fn var(&mut self, name: impl Into<String>, value: i64) -> &mut Self {
        self.env.set_var(name, Value::Int(value));
        self
    }

    /// Declare a lookup table in the initial environment (the paper's
    /// `operands[type]` tables, §3).
    pub fn table(&mut self, name: impl Into<String>, values: Vec<i64>) -> &mut Self {
        self.env.define_table(name, values);
        self
    }

    /// Begin declaring a transition; finish with
    /// [`TransitionBuilder::add`].
    pub fn transition(&mut self, name: impl Into<String>) -> TransitionBuilder<'_> {
        TransitionBuilder {
            builder: self,
            decl: TransitionDecl {
                name: name.into(),
                inputs: Vec::new(),
                outputs: Vec::new(),
                inhibitors: Vec::new(),
                firing_time: Delay::ZERO,
                enabling_time: Delay::ZERO,
                frequency: 1.0,
                predicate: None,
                action: None,
                max_concurrent: None,
            },
        }
    }

    /// Resolve names, validate, and produce the net.
    ///
    /// # Errors
    ///
    /// Returns a [`NetError`] describing the first inconsistency found:
    /// duplicate names, arcs to undeclared places, zero weights, invalid
    /// frequencies, or zero concurrency caps.
    pub fn build(&self) -> Result<Net, NetError> {
        let mut place_ids = std::collections::BTreeMap::new();
        let mut places = Vec::with_capacity(self.places.len());
        for (name, tokens) in &self.places {
            if place_ids
                .insert(name.clone(), PlaceId::new(places.len()))
                .is_some()
            {
                return Err(NetError::DuplicatePlace(name.clone()));
            }
            places.push(Place::new(name.clone(), *tokens));
        }

        // Duplicate arcs to the same place are merged: weights add for
        // input/output arcs (two weight-1 arcs consume two tokens), and
        // the *strictest* (lowest) threshold wins for inhibitors. This
        // keeps `marking_enabled`'s per-arc check sound.
        let resolve = |tname: &str,
                       arcs: &[(String, u32)],
                       merge_add: bool|
         -> Result<Vec<(PlaceId, u32)>, NetError> {
            let mut merged: Vec<(PlaceId, u32)> = Vec::with_capacity(arcs.len());
            for (pname, w) in arcs {
                if *w == 0 {
                    return Err(NetError::ZeroWeight {
                        transition: tname.to_string(),
                        place: pname.clone(),
                    });
                }
                let id = place_ids
                    .get(pname)
                    .copied()
                    .ok_or_else(|| NetError::UnknownPlace {
                        transition: tname.to_string(),
                        place: pname.clone(),
                    })?;
                match merged.iter_mut().find(|(p, _)| *p == id) {
                    Some((_, existing)) if merge_add => *existing += *w,
                    Some((_, existing)) => *existing = (*existing).min(*w),
                    None => merged.push((id, *w)),
                }
            }
            Ok(merged)
        };

        let mut seen_transitions = std::collections::BTreeSet::new();
        let mut transitions = Vec::with_capacity(self.transitions.len());
        for d in &self.transitions {
            if !seen_transitions.insert(d.name.clone()) {
                return Err(NetError::DuplicateTransition(d.name.clone()));
            }
            if !(d.frequency.is_finite() && d.frequency > 0.0) {
                return Err(NetError::InvalidFrequency {
                    transition: d.name.clone(),
                    frequency: d.frequency,
                });
            }
            if d.max_concurrent == Some(0) {
                return Err(NetError::ZeroConcurrency {
                    transition: d.name.clone(),
                });
            }
            transitions.push(Transition::new(
                d.name.clone(),
                resolve(&d.name, &d.inputs, true)?,
                resolve(&d.name, &d.outputs, true)?,
                resolve(&d.name, &d.inhibitors, false)?,
                fold_delay(&d.firing_time),
                fold_delay(&d.enabling_time),
                d.frequency,
                d.predicate.clone(),
                d.action.clone(),
                d.max_concurrent,
            ));
        }

        Ok(Net::from_parts(
            self.name.clone(),
            places,
            transitions,
            self.env.clone(),
        ))
    }
}

/// In-progress transition declaration; obtained from
/// [`NetBuilder::transition`].
#[derive(Debug)]
pub struct TransitionBuilder<'a> {
    builder: &'a mut NetBuilder,
    decl: TransitionDecl,
}

impl TransitionBuilder<'_> {
    /// Add an input arc of weight 1 (a pre-condition consumed on firing).
    pub fn input(self, place: impl Into<String>) -> Self {
        self.input_weighted(place, 1)
    }

    /// Add an input arc with an explicit weight.
    pub fn input_weighted(mut self, place: impl Into<String>, weight: u32) -> Self {
        self.decl.inputs.push((place.into(), weight));
        self
    }

    /// Add an output arc of weight 1 (a post-condition enabled on firing).
    pub fn output(self, place: impl Into<String>) -> Self {
        self.output_weighted(place, 1)
    }

    /// Add an output arc with an explicit weight.
    pub fn output_weighted(mut self, place: impl Into<String>, weight: u32) -> Self {
        self.decl.outputs.push((place.into(), weight));
        self
    }

    /// Add an inhibitor arc with threshold 1: the transition is disabled
    /// while the place is non-empty (the paper's "dark bubble" arcs).
    pub fn inhibitor(self, place: impl Into<String>) -> Self {
        self.inhibitor_at(place, 1)
    }

    /// Add an inhibitor arc with an explicit threshold: disabled while
    /// the place holds at least `threshold` tokens.
    pub fn inhibitor_at(mut self, place: impl Into<String>, threshold: u32) -> Self {
        self.decl.inhibitors.push((place.into(), threshold));
        self
    }

    /// Set a fixed firing time in ticks.
    pub fn firing(mut self, ticks: u64) -> Self {
        self.decl.firing_time = Delay::Fixed(ticks);
        self
    }

    /// Set an expression-valued firing time (evaluated at each firing).
    pub fn firing_expr(mut self, expr: Expr) -> Self {
        self.decl.firing_time = Delay::Expr(expr);
        self
    }

    /// Set a fixed enabling time in ticks.
    pub fn enabling(mut self, ticks: u64) -> Self {
        self.decl.enabling_time = Delay::Fixed(ticks);
        self
    }

    /// Set an expression-valued enabling time.
    pub fn enabling_expr(mut self, expr: Expr) -> Self {
        self.decl.enabling_time = Delay::Expr(expr);
        self
    }

    /// Set the relative firing frequency (default 1.0).
    pub fn frequency(mut self, frequency: f64) -> Self {
        self.decl.frequency = frequency;
        self
    }

    /// Attach a predicate.
    pub fn predicate(mut self, predicate: Expr) -> Self {
        self.decl.predicate = Some(predicate);
        self
    }

    /// Attach a predicate from source text.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadExpression`] if the text does not parse.
    pub fn predicate_str(self, src: &str) -> Result<Self, NetError> {
        let name = self.decl.name.clone();
        let predicate = Expr::parse(src).map_err(|source| NetError::BadExpression {
            transition: name,
            source,
        })?;
        Ok(self.predicate(predicate))
    }

    /// Attach an action.
    pub fn action(mut self, action: Action) -> Self {
        self.decl.action = Some(action);
        self
    }

    /// Attach an action from source text.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadExpression`] if the text does not parse.
    pub fn action_str(self, src: &str) -> Result<Self, NetError> {
        let name = self.decl.name.clone();
        let action = Action::parse(src).map_err(|source| NetError::BadExpression {
            transition: name,
            source,
        })?;
        Ok(self.action(action))
    }

    /// Cap concurrent firings (models a k-server physical unit).
    pub fn max_concurrent(mut self, cap: u32) -> Self {
        self.decl.max_concurrent = Some(cap);
        self
    }

    /// Commit the transition to the net being built.
    pub fn add(self) {
        self.builder.transitions.push(self.decl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declaration_order_is_irrelevant() {
        // Transition declared before the places it references.
        let mut b = NetBuilder::new("n");
        b.transition("t").input("a").output("b").add();
        b.place("a", 1);
        b.place("b", 0);
        assert!(b.build().is_ok());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = NetBuilder::new("n");
        b.place("a", 0).place("a", 1);
        assert!(matches!(b.build(), Err(NetError::DuplicatePlace(_))));

        let mut b = NetBuilder::new("n");
        b.place("a", 0);
        b.transition("t").input("a").add();
        b.transition("t").input("a").add();
        assert!(matches!(b.build(), Err(NetError::DuplicateTransition(_))));
    }

    #[test]
    fn unknown_place_rejected() {
        let mut b = NetBuilder::new("n");
        b.transition("t").input("ghost").add();
        assert!(matches!(b.build(), Err(NetError::UnknownPlace { .. })));
    }

    #[test]
    fn zero_weight_rejected() {
        let mut b = NetBuilder::new("n");
        b.place("a", 0);
        b.transition("t").input_weighted("a", 0).add();
        assert!(matches!(b.build(), Err(NetError::ZeroWeight { .. })));
    }

    #[test]
    fn invalid_frequency_rejected() {
        for freq in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut b = NetBuilder::new("n");
            b.place("a", 0);
            b.transition("t").input("a").frequency(freq).add();
            assert!(
                matches!(b.build(), Err(NetError::InvalidFrequency { .. })),
                "frequency {freq} should be rejected"
            );
        }
    }

    #[test]
    fn zero_concurrency_rejected() {
        let mut b = NetBuilder::new("n");
        b.place("a", 0);
        b.transition("t").input("a").max_concurrent(0).add();
        assert!(matches!(b.build(), Err(NetError::ZeroConcurrency { .. })));
    }

    #[test]
    fn bad_predicate_text_rejected() {
        let mut b = NetBuilder::new("n");
        b.place("a", 0);
        let r = b.transition("t").predicate_str("1 +");
        assert!(matches!(r, Err(NetError::BadExpression { .. })));
    }

    #[test]
    fn env_declarations_reach_initial_env() {
        let mut b = NetBuilder::new("n");
        b.var("x", 7).table("tab", vec![1, 2, 3]);
        let net = b.build().unwrap();
        assert_eq!(net.initial_env().int("x").unwrap(), 7);
        assert_eq!(net.initial_env().table("tab").unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn duplicate_arcs_merge() {
        let mut b = NetBuilder::new("n");
        b.place("a", 1);
        b.place("out", 0);
        b.transition("t")
            .input("a")
            .input("a") // merges to weight 2
            .output("out")
            .output_weighted("out", 2) // merges to weight 3
            .inhibitor_at("a", 3)
            .inhibitor_at("a", 2) // strictest threshold wins
            .add();
        let net = b.build().unwrap();
        let t = net.transition(net.transition_id("t").unwrap());
        assert_eq!(t.inputs(), &[(net.place_id("a").unwrap(), 2)]);
        assert_eq!(t.outputs(), &[(net.place_id("out").unwrap(), 3)]);
        assert_eq!(t.inhibitors(), &[(net.place_id("a").unwrap(), 2)]);
        // One token on `a` must NOT enable the weight-2 merged arc.
        assert!(!t.marking_enabled(&net.initial_marking()));
    }

    #[test]
    fn places_empty_declares_many() {
        let mut b = NetBuilder::new("n");
        b.places_empty(["x", "y", "z"]);
        let net = b.build().unwrap();
        assert_eq!(net.place_count(), 3);
        assert_eq!(net.initial_marking().total_tokens(), 0);
    }
}
