//! The net structure: places, transitions, arcs, delays.

use crate::expr::{Action, Env, EvalError, Expr};
use crate::marking::Marking;
use crate::time::Time;
use crate::Randomness;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a place within a [`Net`].
///
/// Indices are dense (`0..net.place_count()`), so analysis tools may use
/// them directly as vector indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(usize);

impl PlaceId {
    /// Construct from a raw index.
    pub const fn new(index: usize) -> Self {
        PlaceId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a transition within a [`Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(usize);

impl TransitionId {
    /// Construct from a raw index.
    pub const fn new(index: usize) -> Self {
        TransitionId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A condition holder (paper §1: conditions correspond to places).
#[derive(Debug, Clone, PartialEq)]
pub struct Place {
    name: String,
    initial_tokens: u32,
}

impl Place {
    pub(crate) fn new(name: String, initial_tokens: u32) -> Self {
        Place {
            name,
            initial_tokens,
        }
    }

    /// The place's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tokens on this place in the initial marking.
    pub fn initial_tokens(&self) -> u32 {
        self.initial_tokens
    }
}

/// A time annotation on a transition: a constant tick count or an
/// expression evaluated (against the variable environment) each time the
/// transition fires — the paper's table-driven delays (§3).
#[derive(Debug, Clone, PartialEq)]
pub enum Delay {
    /// A fixed number of ticks.
    Fixed(u64),
    /// An expression producing the number of ticks; evaluated at
    /// start-of-firing (firing time) or when the transition becomes
    /// enabled (enabling time). Must yield a non-negative integer.
    Expr(Expr),
}

impl Delay {
    /// The zero delay.
    pub const ZERO: Delay = Delay::Fixed(0);

    /// Whether the delay is the constant zero.
    pub fn is_zero_constant(&self) -> bool {
        matches!(self, Delay::Fixed(0))
    }

    /// Whether the delay is a constant.
    pub fn is_fixed(&self) -> bool {
        matches!(self, Delay::Fixed(_))
    }

    /// Resolve the delay to a duration.
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation failures; a negative result is
    /// reported as [`EvalError::TypeMismatch`]-adjacent overflow via
    /// [`EvalError::Overflow`].
    pub fn resolve(&self, env: &Env, rng: &mut dyn Randomness) -> Result<Time, EvalError> {
        match self {
            Delay::Fixed(t) => Ok(Time::from_ticks(*t)),
            Delay::Expr(e) => {
                let v = e.eval_int(env, rng)?;
                u64::try_from(v)
                    .map(Time::from_ticks)
                    .map_err(|_| EvalError::Overflow)
            }
        }
    }
}

impl Default for Delay {
    fn default() -> Self {
        Delay::ZERO
    }
}

impl From<u64> for Delay {
    fn from(ticks: u64) -> Self {
        Delay::Fixed(ticks)
    }
}

impl From<Expr> for Delay {
    fn from(e: Expr) -> Self {
        Delay::Expr(e)
    }
}

impl fmt::Display for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Delay::Fixed(t) => write!(f, "{t}"),
            Delay::Expr(e) => write!(f, "({e})"),
        }
    }
}

/// An event (paper §1: events correspond to transitions).
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    name: String,
    inputs: Vec<(PlaceId, u32)>,
    outputs: Vec<(PlaceId, u32)>,
    inhibitors: Vec<(PlaceId, u32)>,
    firing_time: Delay,
    enabling_time: Delay,
    frequency: f64,
    predicate: Option<Expr>,
    action: Option<Action>,
    max_concurrent: Option<u32>,
}

impl Transition {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: String,
        inputs: Vec<(PlaceId, u32)>,
        outputs: Vec<(PlaceId, u32)>,
        inhibitors: Vec<(PlaceId, u32)>,
        firing_time: Delay,
        enabling_time: Delay,
        frequency: f64,
        predicate: Option<Expr>,
        action: Option<Action>,
        max_concurrent: Option<u32>,
    ) -> Self {
        Transition {
            name,
            inputs,
            outputs,
            inhibitors,
            firing_time,
            enabling_time,
            frequency,
            predicate,
            action,
            max_concurrent,
        }
    }

    /// The transition's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input arcs as `(place, weight)`; the weight is the number of
    /// tokens consumed (e.g. 2 for the paper's two-words-per-prefetch).
    pub fn inputs(&self) -> &[(PlaceId, u32)] {
        &self.inputs
    }

    /// Output arcs as `(place, weight)`.
    pub fn outputs(&self) -> &[(PlaceId, u32)] {
        &self.outputs
    }

    /// Inhibitor arcs as `(place, threshold)`: the transition is disabled
    /// while the place holds `>= threshold` tokens (threshold 1 is the
    /// paper's plain "dark bubble" inhibitor).
    pub fn inhibitors(&self) -> &[(PlaceId, u32)] {
        &self.inhibitors
    }

    /// The firing time: tokens are inside the transition for this long.
    pub fn firing_time(&self) -> &Delay {
        &self.firing_time
    }

    /// The enabling time: the transition must be continuously enabled for
    /// this long before it may fire.
    pub fn enabling_time(&self) -> &Delay {
        &self.enabling_time
    }

    /// Relative firing frequency used to resolve conflicts `[WPS86]`.
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// Data-dependent precondition, if any.
    pub fn predicate(&self) -> Option<&Expr> {
        self.predicate.as_ref()
    }

    /// Data transformation executed at start-of-firing, if any.
    pub fn action(&self) -> Option<&Action> {
        self.action.as_ref()
    }

    /// Cap on simultaneous firings (`None` = unbounded, the classical
    /// timed-net semantics the paper uses for queueing servers, §4.2).
    pub fn max_concurrent(&self) -> Option<u32> {
        self.max_concurrent
    }

    /// Whether the marking alone (ignoring predicate and enabling time)
    /// permits this transition to fire.
    pub fn marking_enabled(&self, marking: &Marking) -> bool {
        self.inputs.iter().all(|&(p, w)| marking.covers(p, w))
            && self
                .inhibitors
                .iter()
                .all(|&(p, th)| !marking.covers(p, th))
    }

    /// Whether the transition uses `irand` anywhere (predicate, action,
    /// or expression-valued delays).
    pub fn uses_random(&self) -> bool {
        self.predicate.as_ref().is_some_and(Expr::uses_random)
            || self.action.as_ref().is_some_and(Action::uses_random)
            || matches!(&self.firing_time, Delay::Expr(e) if e.uses_random())
            || matches!(&self.enabling_time, Delay::Expr(e) if e.uses_random())
    }
}

/// An extended timed Petri net.
///
/// Construct with [`crate::NetBuilder`]; the structure is immutable once
/// built, which lets simulators and analyzers index places and
/// transitions densely.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    name: String,
    places: Vec<Place>,
    transitions: Vec<Transition>,
    place_index: BTreeMap<String, PlaceId>,
    transition_index: BTreeMap<String, TransitionId>,
    initial_env: Env,
}

impl Net {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: String,
        places: Vec<Place>,
        transitions: Vec<Transition>,
        initial_env: Env,
    ) -> Self {
        let place_index = places
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), PlaceId::new(i)))
            .collect();
        let transition_index = transitions
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.clone(), TransitionId::new(i)))
            .collect();
        Net {
            name,
            places,
            transitions,
            place_index,
            transition_index,
            initial_env,
        }
    }

    /// Start building a net with the given name.
    pub fn builder(name: impl Into<String>) -> crate::NetBuilder {
        crate::NetBuilder::new(name)
    }

    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Look up a place by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn place(&self, id: PlaceId) -> &Place {
        &self.places[id.index()]
    }

    /// Look up a transition by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn transition(&self, id: TransitionId) -> &Transition {
        &self.transitions[id.index()]
    }

    /// Find a place by name.
    pub fn place_id(&self, name: &str) -> Option<PlaceId> {
        self.place_index.get(name).copied()
    }

    /// Find a transition by name.
    pub fn transition_id(&self, name: &str) -> Option<TransitionId> {
        self.transition_index.get(name).copied()
    }

    /// Iterate places with their ids.
    pub fn places(&self) -> impl Iterator<Item = (PlaceId, &Place)> + '_ {
        self.places
            .iter()
            .enumerate()
            .map(|(i, p)| (PlaceId::new(i), p))
    }

    /// Iterate transitions with their ids.
    pub fn transitions(&self) -> impl Iterator<Item = (TransitionId, &Transition)> + '_ {
        self.transitions
            .iter()
            .enumerate()
            .map(|(i, t)| (TransitionId::new(i), t))
    }

    /// The initial marking (from each place's initial token count).
    pub fn initial_marking(&self) -> Marking {
        self.places.iter().map(|p| p.initial_tokens).collect()
    }

    /// The initial variable environment (variables and tables declared at
    /// build time).
    pub fn initial_env(&self) -> &Env {
        &self.initial_env
    }

    /// Transitions that consume from `place`.
    pub fn consumers(&self, place: PlaceId) -> Vec<TransitionId> {
        self.transitions()
            .filter(|(_, t)| t.inputs.iter().any(|&(p, _)| p == place))
            .map(|(id, _)| id)
            .collect()
    }

    /// Transitions that produce into `place`.
    pub fn producers(&self, place: PlaceId) -> Vec<TransitionId> {
        self.transitions()
            .filter(|(_, t)| t.outputs.iter().any(|&(p, _)| p == place))
            .map(|(id, _)| id)
            .collect()
    }

    /// Whether any transition uses `irand` (such nets cannot be analyzed
    /// by deterministic tools like reachability construction).
    pub fn uses_random(&self) -> bool {
        self.transitions.iter().any(Transition::uses_random)
    }

    /// Whether `transition` may start firing in `marking` with variable
    /// state `env`: marking-enabled and predicate-true.
    ///
    /// Enabling *time* is the simulator's concern (it needs a clock); this
    /// checks the instantaneous condition the clock measures.
    ///
    /// # Errors
    ///
    /// Propagates predicate evaluation failures.
    pub fn enabled(
        &self,
        transition: TransitionId,
        marking: &Marking,
        env: &Env,
        rng: &mut dyn Randomness,
    ) -> Result<bool, EvalError> {
        let t = self.transition(transition);
        if !t.marking_enabled(marking) {
            return Ok(false);
        }
        match t.predicate() {
            Some(p) => p.eval_bool(env, rng),
            None => Ok(true),
        }
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "net {} ({} places, {} transitions)",
            self.name,
            self.places.len(),
            self.transitions.len()
        )?;
        for (_, p) in self.places() {
            writeln!(f, "  place {} = {}", p.name(), p.initial_tokens())?;
        }
        for (_, t) in self.transitions() {
            write!(f, "  trans {}", t.name())?;
            for &(p, w) in t.inputs() {
                write!(f, " <{}x{}", self.place(p).name(), w)?;
            }
            for &(p, w) in t.outputs() {
                write!(f, " >{}x{}", self.place(p).name(), w)?;
            }
            for &(p, th) in t.inhibitors() {
                write!(f, " !{}@{}", self.place(p).name(), th)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CyclingRandomness, NetBuilder};

    fn two_place_net() -> Net {
        let mut b = NetBuilder::new("t");
        b.place("a", 2);
        b.place("b", 0);
        b.transition("move").input("a").output("b").add();
        b.build().unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let net = two_place_net();
        let a = net.place_id("a").unwrap();
        assert_eq!(net.place(a).name(), "a");
        assert_eq!(net.place(a).initial_tokens(), 2);
        assert!(net.place_id("zzz").is_none());
        let m = net.transition_id("move").unwrap();
        assert_eq!(net.transition(m).name(), "move");
    }

    #[test]
    fn initial_marking_reflects_declarations() {
        let net = two_place_net();
        let m = net.initial_marking();
        assert_eq!(m.tokens(net.place_id("a").unwrap()), 2);
        assert_eq!(m.tokens(net.place_id("b").unwrap()), 0);
    }

    #[test]
    fn consumers_and_producers() {
        let net = two_place_net();
        let a = net.place_id("a").unwrap();
        let b = net.place_id("b").unwrap();
        let mv = net.transition_id("move").unwrap();
        assert_eq!(net.consumers(a), vec![mv]);
        assert_eq!(net.producers(b), vec![mv]);
        assert!(net.consumers(b).is_empty());
    }

    #[test]
    fn marking_enabled_respects_weights_and_inhibitors() {
        let mut b = NetBuilder::new("t");
        b.place("in", 3);
        b.place("stop", 0);
        b.place("out", 0);
        b.transition("go")
            .input_weighted("in", 2)
            .inhibitor("stop")
            .output("out")
            .add();
        let net = b.build().unwrap();
        let go = net.transition_id("go").unwrap();
        let mut m = net.initial_marking();
        assert!(net.transition(go).marking_enabled(&m));
        m.set(net.place_id("in").unwrap(), 1);
        assert!(!net.transition(go).marking_enabled(&m), "weight 2 unmet");
        m.set(net.place_id("in").unwrap(), 2);
        m.set(net.place_id("stop").unwrap(), 1);
        assert!(!net.transition(go).marking_enabled(&m), "inhibited");
    }

    #[test]
    fn enabled_consults_predicate() {
        let mut b = NetBuilder::new("t");
        b.place("p", 1);
        b.var("go", 0);
        b.transition("t1")
            .input("p")
            .predicate_str("go == 1")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        let t1 = net.transition_id("t1").unwrap();
        let m = net.initial_marking();
        let mut env = net.initial_env().clone();
        let mut rng = CyclingRandomness::new();
        assert!(!net.enabled(t1, &m, &env, &mut rng).unwrap());
        env.set_var("go", crate::Value::Int(1));
        assert!(net.enabled(t1, &m, &env, &mut rng).unwrap());
    }

    #[test]
    fn delay_resolution() {
        let env = Env::new();
        let mut rng = CyclingRandomness::new();
        assert_eq!(
            Delay::Fixed(5).resolve(&env, &mut rng).unwrap(),
            Time::from_ticks(5)
        );
        let d = Delay::Expr(Expr::parse("2 * 3").unwrap());
        assert_eq!(d.resolve(&env, &mut rng).unwrap(), Time::from_ticks(6));
        let neg = Delay::Expr(Expr::parse("0 - 1").unwrap());
        assert!(neg.resolve(&env, &mut rng).is_err());
        assert!(Delay::ZERO.is_zero_constant());
        assert!(Delay::from(3u64).is_fixed());
    }

    #[test]
    fn display_lists_structure() {
        let net = two_place_net();
        let s = net.to_string();
        assert!(s.contains("place a = 2"));
        assert!(s.contains("trans move"));
    }
}
