//! Structural analysis of nets (no simulation required).
//!
//! These checks catch modeling mistakes of the kind §4.4 of the paper
//! warns about *before* a simulation is run: places nothing ever feeds,
//! transitions that can never fire, and token-conservation structure such
//! as the paper's `Bus_free`/`Bus_busy` complementary-place pattern.

use crate::net::{Net, PlaceId, TransitionId};

/// Summary of structural properties of a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralReport {
    /// Places with no producing transition (their tokens can only drain).
    pub source_only_places: Vec<PlaceId>,
    /// Places with no consuming transition (their tokens only accumulate).
    pub sink_only_places: Vec<PlaceId>,
    /// Places connected to no transition at all.
    pub isolated_places: Vec<PlaceId>,
    /// Transitions with no input arcs: always marking-enabled, so they
    /// can fire unboundedly often (legal but worth flagging).
    pub sourceless_transitions: Vec<TransitionId>,
    /// Transitions that are structurally dead in the initial marking:
    /// some input place is unmarked *and* has no producers.
    pub structurally_dead_transitions: Vec<TransitionId>,
}

impl StructuralReport {
    /// Whether the report flags nothing.
    pub fn is_clean(&self) -> bool {
        self.source_only_places.is_empty()
            && self.sink_only_places.is_empty()
            && self.isolated_places.is_empty()
            && self.sourceless_transitions.is_empty()
            && self.structurally_dead_transitions.is_empty()
    }
}

/// Compute the [`StructuralReport`] for `net`.
///
/// # Example
///
/// ```
/// use pnut_core::{NetBuilder, analysis};
///
/// # fn main() -> Result<(), pnut_core::NetError> {
/// let mut b = NetBuilder::new("n");
/// b.place("a", 1);
/// b.place("orphan", 0);
/// b.transition("t").input("a").output("a").add();
/// let report = analysis::structural_report(&b.build()?);
/// assert_eq!(report.isolated_places.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn structural_report(net: &Net) -> StructuralReport {
    let mut has_producer = vec![false; net.place_count()];
    let mut has_consumer = vec![false; net.place_count()];
    for (_, t) in net.transitions() {
        for &(p, _) in t.outputs() {
            has_producer[p.index()] = true;
        }
        for &(p, _) in t.inputs() {
            has_consumer[p.index()] = true;
        }
    }

    let mut source_only = Vec::new();
    let mut sink_only = Vec::new();
    let mut isolated = Vec::new();
    for (id, _) in net.places() {
        match (has_producer[id.index()], has_consumer[id.index()]) {
            (false, true) => source_only.push(id),
            (true, false) => sink_only.push(id),
            (false, false) => isolated.push(id),
            (true, true) => {}
        }
    }

    let initial = net.initial_marking();
    let mut sourceless = Vec::new();
    let mut dead = Vec::new();
    for (id, t) in net.transitions() {
        if t.inputs().is_empty() {
            sourceless.push(id);
        }
        let starved = t
            .inputs()
            .iter()
            .any(|&(p, w)| initial.tokens(p) < w && !has_producer[p.index()]);
        if starved {
            dead.push(id);
        }
    }

    StructuralReport {
        source_only_places: source_only,
        sink_only_places: sink_only,
        isolated_places: isolated,
        sourceless_transitions: sourceless,
        structurally_dead_transitions: dead,
    }
}

/// Check whether a set of places is a *complementary group*: every
/// transition that touches any of them preserves their token sum.
///
/// This is the structural form of the paper's §4.4 invariant
/// `Bus_busy + Bus_free = 1`: if the group is complementary and the
/// transitions moving tokens inside the group all have zero firing time,
/// the sum is constant in every observable state.
///
/// Returns the names of transitions that violate conservation (empty =
/// the group is complementary).
pub fn conservation_violations(net: &Net, group: &[PlaceId]) -> Vec<TransitionId> {
    let in_group = |p: PlaceId| group.contains(&p);
    net.transitions()
        .filter(|(_, t)| {
            let consumed: i64 = t
                .inputs()
                .iter()
                .filter(|&&(p, _)| in_group(p))
                .map(|&(_, w)| i64::from(w))
                .sum();
            let produced: i64 = t
                .outputs()
                .iter()
                .filter(|&&(p, _)| in_group(p))
                .map(|&(_, w)| i64::from(w))
                .sum();
            consumed != produced
        })
        .map(|(id, _)| id)
        .collect()
}

/// Transitions in the group that move tokens *within* `group` but have a
/// non-zero (or non-constant) firing time — these make the group's token
/// sum observably dip during firing, the §4.2 modeling bug the paper
/// demonstrates catching with a trace query.
pub fn nonatomic_group_movers(net: &Net, group: &[PlaceId]) -> Vec<TransitionId> {
    let in_group = |p: PlaceId| group.contains(&p);
    net.transitions()
        .filter(|(_, t)| {
            let touches = t.inputs().iter().any(|&(p, _)| in_group(p))
                && t.outputs().iter().any(|&(p, _)| in_group(p));
            touches && !t.firing_time().is_zero_constant()
        })
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    fn bus_net(atomic: bool) -> Net {
        let mut b = NetBuilder::new("bus");
        b.place("Bus_free", 1);
        b.place("Bus_busy", 0);
        b.place("work", 1);
        let t = b
            .transition("acquire")
            .input("Bus_free")
            .input("work")
            .output("Bus_busy");
        let t = if atomic { t } else { t.firing(3) };
        t.add();
        b.transition("release")
            .input("Bus_busy")
            .output("Bus_free")
            .output("work")
            .add();
        b.build().unwrap()
    }

    #[test]
    fn complementary_bus_group_is_conserved() {
        let net = bus_net(true);
        let group = [
            net.place_id("Bus_free").unwrap(),
            net.place_id("Bus_busy").unwrap(),
        ];
        assert!(conservation_violations(&net, &group).is_empty());
        assert!(nonatomic_group_movers(&net, &group).is_empty());
    }

    #[test]
    fn nonzero_firing_time_flagged_as_nonatomic() {
        let net = bus_net(false);
        let group = [
            net.place_id("Bus_free").unwrap(),
            net.place_id("Bus_busy").unwrap(),
        ];
        // Conservation still holds structurally...
        assert!(conservation_violations(&net, &group).is_empty());
        // ...but the mover is non-atomic: the §4.2 bug.
        let movers = nonatomic_group_movers(&net, &group);
        assert_eq!(movers.len(), 1);
        assert_eq!(net.transition(movers[0]).name(), "acquire");
    }

    #[test]
    fn violation_detected_when_group_leaks() {
        let mut b = NetBuilder::new("leak");
        b.place("a", 1);
        b.place("b", 0);
        b.place("outside", 0);
        b.transition("leak").input("a").output("outside").add();
        let net = b.build().unwrap();
        let group = [net.place_id("a").unwrap(), net.place_id("b").unwrap()];
        let v = conservation_violations(&net, &group);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn structural_report_flags_everything() {
        let mut b = NetBuilder::new("messy");
        b.place("isolated", 0);
        b.place("fed", 0);
        b.place("drain", 1);
        b.place("starved", 0);
        b.transition("spont").output("fed").add();
        b.transition("eat").input("drain").output("fed").add();
        b.transition("dead").input("starved").add();
        let net = b.build().unwrap();
        let r = structural_report(&net);
        assert_eq!(r.isolated_places.len(), 1);
        assert_eq!(r.sink_only_places.len(), 1, "fed is produce-only");
        assert_eq!(r.source_only_places.len(), 2, "drain and starved");
        assert_eq!(r.sourceless_transitions.len(), 1);
        assert_eq!(r.structurally_dead_transitions.len(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn clean_net_reports_clean() {
        let mut b = NetBuilder::new("ring");
        b.place("a", 1);
        b.place("b", 0);
        b.transition("ab").input("a").output("b").add();
        b.transition("ba").input("b").output("a").add();
        let r = structural_report(&b.build().unwrap());
        assert!(r.is_clean());
    }
}
