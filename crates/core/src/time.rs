//! Discrete simulation time.
//!
//! The paper's processor models are clocked in *processor cycles*; all
//! delays (decoding = 1 cycle, memory access = 5 cycles, ...) are integer
//! multiples of a cycle, so time is a `u64` tick count wrapped in a
//! newtype for static distinction (C-NEWTYPE).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) discrete simulation time, in ticks.
///
/// One tick corresponds to one processor cycle in the paper's models.
///
/// # Example
///
/// ```
/// use pnut_core::Time;
///
/// let t = Time::ZERO + Time::from_ticks(5);
/// assert_eq!(t.ticks(), 5);
/// assert!(t > Time::ZERO);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u64);

impl Time {
    /// The start of simulation time.
    pub const ZERO: Time = Time(0);

    /// The greatest representable time; used as the "no pending event"
    /// sentinel by schedulers.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct a time from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        Time(ticks)
    }

    /// The raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a tick count.
    pub const fn saturating_add_ticks(self, ticks: u64) -> Self {
        Time(self.0.saturating_add(ticks))
    }

    /// Checked subtraction, `None` if `other > self`.
    pub const fn checked_sub(self, other: Time) -> Option<Time> {
        match self.0.checked_sub(other.0) {
            Some(d) => Some(Time(d)),
            None => None,
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Time {
    fn from(ticks: u64) -> Self {
        Time(ticks)
    }
}

impl From<Time> for u64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

impl Add for Time {
    type Output = Time;

    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;

    /// # Panics
    ///
    /// Panics on underflow, exactly like integer subtraction in debug
    /// builds; use [`Time::checked_sub`] when the ordering is not known.
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let a = Time::from_ticks(3);
        let b = Time::from_ticks(7);
        assert_eq!((a + b).ticks(), 10);
        assert_eq!((b - a).ticks(), 4);
        assert!(a < b);
        assert_eq!(b.checked_sub(a), Some(Time::from_ticks(4)));
        assert_eq!(a.checked_sub(b), None);
    }

    #[test]
    fn saturating_add_does_not_overflow() {
        assert_eq!(Time::MAX.saturating_add_ticks(5), Time::MAX);
    }

    #[test]
    fn display_and_conversions() {
        let t: Time = 42u64.into();
        assert_eq!(t.to_string(), "42");
        let raw: u64 = t.into();
        assert_eq!(raw, 42);
    }
}
