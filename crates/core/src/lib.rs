#![forbid(unsafe_code)]

//! # pnut-core — extended timed Petri nets
//!
//! Core data model for the P-NUT reproduction: the "flavor" of Petri nets
//! described in Razouk, *The Use of Petri Nets for Modeling Pipelined
//! Processors* (UCI TR 87-29 / DAC 1988), §1.
//!
//! The model extends classical place/transition nets with everything the
//! paper argues is essential for faithful processor models:
//!
//! * **weighted arcs** — e.g. instruction buffers consumed two-at-a-time;
//! * **inhibitor arcs** — "no operand fetch pending" style preconditions;
//! * **firing times** — time during which tokens are inside a transition
//!   (neither on inputs nor outputs);
//! * **enabling times** — a delay during which a transition must be
//!   *continuously* enabled before it may fire (memory latency, timeouts);
//! * **relative firing frequencies** — probabilistic resolution of
//!   conflicts between competing events `[WPS86]`;
//! * **predicates and actions** — data-dependent preconditions and data
//!   transformations over an integer variable environment, enabling the
//!   table-driven instruction-set models of §3 of the paper.
//!
//! # Example
//!
//! Build the bus/prefetch fragment of the paper's Figure 1:
//!
//! ```
//! use pnut_core::NetBuilder;
//!
//! # fn main() -> Result<(), pnut_core::NetError> {
//! let mut b = NetBuilder::new("prefetch");
//! b.place("Bus_free", 1);
//! b.place("Empty_I_buffers", 6);
//! b.place("pre_fetching", 0);
//! b.place("Operand_fetch_pending", 0);
//! b.transition("Start_prefetch")
//!     .input("Bus_free")
//!     .input_weighted("Empty_I_buffers", 2)
//!     .inhibitor("Operand_fetch_pending")
//!     .output("pre_fetching")
//!     .add();
//! let net = b.build()?;
//! assert_eq!(net.place_count(), 4);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
mod builder;
mod error;
pub mod expr;
pub mod invariant;
mod marking;
mod net;
mod time;

pub use builder::{NetBuilder, TransitionBuilder};
pub use error::NetError;
pub use expr::{Action, CompileError, CompiledNet, Env, EvalError, Expr, ParseExprError, Value};
pub use marking::Marking;
pub use net::{Delay, Net, Place, PlaceId, Transition, TransitionId};
pub use time::Time;

/// Source of randomness used when evaluating `irand` in expressions and
/// when resolving conflicts by firing frequency.
///
/// Defined here (rather than depending on the `rand` crate) so that the
/// core model stays dependency-light; `pnut-sim` adapts a real RNG onto
/// this trait, and analysis tools that must stay deterministic (such as
/// reachability construction) can refuse randomness entirely.
pub trait Randomness {
    /// Return a uniformly distributed integer in `lo..=hi`.
    ///
    /// Implementations may assume `lo <= hi`; callers must validate.
    fn int_in_range(&mut self, lo: i64, hi: i64) -> i64;

    /// Return a uniformly distributed `f64` in `[0, 1)`.
    fn unit_f64(&mut self) -> f64;
}

/// A deterministic counter-based [`Randomness`] for tests.
///
/// Cycles through the admissible range; useful for making unit tests of
/// `irand`-bearing actions reproducible without pulling in an RNG crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CyclingRandomness {
    counter: u64,
}

impl CyclingRandomness {
    /// Create a cycling source starting at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Randomness for CyclingRandomness {
    fn int_in_range(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo) as u64 + 1;
        let v = lo + (self.counter % span) as i64;
        self.counter = self.counter.wrapping_add(1);
        v
    }

    fn unit_f64(&mut self) -> f64 {
        let v = (self.counter % 1000) as f64 / 1000.0;
        self.counter = self.counter.wrapping_add(1);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycling_randomness_cycles_through_range() {
        let mut r = CyclingRandomness::new();
        let vals: Vec<i64> = (0..6).map(|_| r.int_in_range(1, 3)).collect();
        assert_eq!(vals, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn cycling_randomness_unit_f64_in_range() {
        let mut r = CyclingRandomness::new();
        for _ in 0..100 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
