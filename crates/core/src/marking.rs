//! Markings: the token state of a net.

use crate::net::PlaceId;
use std::fmt;

/// A marking assigns a token count to every place of a net.
///
/// Conditions that are true are modeled by tokens on places (paper §1);
/// boolean conditions by presence/absence, counted resources (buffer
/// slots, bus words) by multiple tokens.
///
/// # Example
///
/// ```
/// use pnut_core::{Marking, PlaceId};
///
/// let mut m = Marking::new(3);
/// m.set(PlaceId::new(0), 6);
/// m.add(PlaceId::new(0), 1);
/// assert_eq!(m.tokens(PlaceId::new(0)), 7);
/// assert_eq!(m.total_tokens(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Marking(Vec<u32>);

impl Marking {
    /// A marking over `places` places, all empty.
    pub fn new(places: usize) -> Self {
        Marking(vec![0; places])
    }

    /// Construct from explicit per-place counts.
    pub fn from_counts(counts: Vec<u32>) -> Self {
        Marking(counts)
    }

    /// Number of places covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the marking covers zero places.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Tokens on `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range for this marking.
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.0[place.index()]
    }

    /// Set the token count of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range.
    pub fn set(&mut self, place: PlaceId, tokens: u32) {
        self.0[place.index()] = tokens;
    }

    /// Add tokens to `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range or the count overflows `u32`.
    pub fn add(&mut self, place: PlaceId, tokens: u32) {
        let slot = &mut self.0[place.index()];
        *slot = slot
            .checked_add(tokens)
            .expect("token count overflowed u32");
    }

    /// Remove tokens from `place`, returning `false` (and leaving the
    /// marking unchanged) if there are not enough tokens.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range.
    pub fn try_remove(&mut self, place: PlaceId, tokens: u32) -> bool {
        let slot = &mut self.0[place.index()];
        match slot.checked_sub(tokens) {
            Some(rest) => {
                *slot = rest;
                true
            }
            None => false,
        }
    }

    /// Whether `place` holds at least `tokens` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range.
    pub fn covers(&self, place: PlaceId, tokens: u32) -> bool {
        self.0[place.index()] >= tokens
    }

    /// Total tokens across all places.
    pub fn total_tokens(&self) -> u64 {
        self.0.iter().map(|&t| u64::from(t)).sum()
    }

    /// Iterate `(place, tokens)` pairs in place order.
    pub fn iter(&self) -> impl Iterator<Item = (PlaceId, u32)> + '_ {
        self.0
            .iter()
            .enumerate()
            .map(|(i, &t)| (PlaceId::new(i), t))
    }

    /// The raw token counts in place order.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<u32> for Marking {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Marking(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_cover() {
        let mut m = Marking::new(2);
        let p = PlaceId::new(1);
        m.add(p, 3);
        assert!(m.covers(p, 3));
        assert!(!m.covers(p, 4));
        assert!(m.try_remove(p, 2));
        assert_eq!(m.tokens(p), 1);
        assert!(!m.try_remove(p, 2));
        assert_eq!(m.tokens(p), 1, "failed removal must not change marking");
    }

    #[test]
    fn totals_and_iteration() {
        let m: Marking = vec![1u32, 0, 4].into_iter().collect();
        assert_eq!(m.total_tokens(), 5);
        assert_eq!(m.len(), 3);
        let pairs: Vec<(usize, u32)> = m.iter().map(|(p, t)| (p.index(), t)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 0), (2, 4)]);
    }

    #[test]
    fn display_format() {
        let m = Marking::from_counts(vec![1, 0, 6]);
        assert_eq!(m.to_string(), "[1 0 6]");
    }

    #[test]
    fn orderable_and_hashable_for_reachability() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(Marking::from_counts(vec![1, 0]));
        set.insert(Marking::from_counts(vec![0, 1]));
        set.insert(Marking::from_counts(vec![1, 0]));
        assert_eq!(set.len(), 2);
    }
}
