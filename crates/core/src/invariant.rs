//! Place and transition invariants.
//!
//! Classical structural Petri-net analysis (`[RH80]`, `[Pet81]` in the
//! paper's bibliography): a **P-invariant** is an integer weighting `y`
//! of the places with `yᵀ·C = 0` (where `C` is the incidence matrix), so
//! the weighted token sum `yᵀ·m` is the same in every reachable marking
//! — the algebraic generalization of the paper's §4.4 invariant
//! `Bus_busy + Bus_free = 1`. A **T-invariant** is an integer weighting
//! `x` of the transitions with `C·x = 0`: a firing-count vector that
//! reproduces the marking, i.e. a candidate steady-state cycle.
//!
//! Invariants are computed exactly (rational Gaussian elimination on
//! `i128`, results scaled to coprime integers), so they are proofs, not
//! approximations — but note they account only for ordinary arcs:
//! inhibitor arcs and predicates constrain behaviour further, and
//! firing-time semantics move tokens *into* transitions temporarily, so
//! a P-invariant sum is guaranteed constant at quiescent instants and
//! whenever the involved transitions are instantaneous.
//!
//! # Example
//!
//! ```
//! use pnut_core::{invariant, NetBuilder};
//!
//! # fn main() -> Result<(), pnut_core::NetError> {
//! let mut b = NetBuilder::new("bus");
//! b.place("Bus_free", 1);
//! b.place("Bus_busy", 0);
//! b.transition("seize").input("Bus_free").output("Bus_busy").add();
//! b.transition("release").input("Bus_busy").output("Bus_free").add();
//! let net = b.build()?;
//! let invariants = invariant::p_invariants(&net);
//! // One basis vector: Bus_free + Bus_busy.
//! assert_eq!(invariants.len(), 1);
//! assert_eq!(invariants[0].weights, vec![1, 1]);
//! assert_eq!(invariants[0].token_sum(&net.initial_marking()), 1);
//! # Ok(())
//! # }
//! ```

use crate::marking::Marking;
use crate::net::Net;

/// An integer place weighting with `yᵀ·C = 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PInvariant {
    /// Weight per place (place-id order); coprime, leading weight
    /// positive.
    pub weights: Vec<i64>,
}

impl PInvariant {
    /// The conserved weighted token sum for `marking`.
    ///
    /// # Panics
    ///
    /// Panics if the marking covers a different number of places.
    pub fn token_sum(&self, marking: &Marking) -> i64 {
        assert_eq!(marking.len(), self.weights.len());
        self.weights
            .iter()
            .zip(marking.as_slice())
            .map(|(&w, &t)| w * i64::from(t))
            .sum()
    }

    /// Whether every weight is non-negative (semi-positive invariants
    /// bound the token count of every place in their support).
    pub fn is_semi_positive(&self) -> bool {
        self.weights.iter().all(|&w| w >= 0)
    }

    /// The places with non-zero weight.
    pub fn support(&self) -> Vec<crate::PlaceId> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .map(|(i, _)| crate::PlaceId::new(i))
            .collect()
    }
}

/// An integer transition weighting with `C·x = 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TInvariant {
    /// Weight per transition (transition-id order); coprime, leading
    /// weight positive.
    pub weights: Vec<i64>,
}

impl TInvariant {
    /// Whether every weight is non-negative (realizable firing-count
    /// vectors must be).
    pub fn is_semi_positive(&self) -> bool {
        self.weights.iter().all(|&w| w >= 0)
    }
}

/// The incidence matrix `C[p][t] = W(t→p) − W(p→t)` (ordinary arcs only;
/// inhibitor arcs do not move tokens).
pub fn incidence_matrix(net: &Net) -> Vec<Vec<i64>> {
    let mut c = vec![vec![0i64; net.transition_count()]; net.place_count()];
    for (tid, t) in net.transitions() {
        for &(p, w) in t.inputs() {
            c[p.index()][tid.index()] -= i64::from(w);
        }
        for &(p, w) in t.outputs() {
            c[p.index()][tid.index()] += i64::from(w);
        }
    }
    c
}

/// A basis of the P-invariant space (left null space of the incidence
/// matrix). Every P-invariant of the net is an integer combination of
/// the returned vectors.
pub fn p_invariants(net: &Net) -> Vec<PInvariant> {
    let c = incidence_matrix(net);
    // yᵀ·C = 0  ⇔  Cᵀ·y = 0: null space of the transpose.
    let transpose = transpose(&c);
    null_space(&transpose, net.place_count())
        .into_iter()
        .map(|weights| PInvariant { weights })
        .collect()
}

/// Semi-positive P-invariants (all weights `>= 0`, not all zero)
/// derived from the basis returned by [`p_invariants`].
///
/// Basis vectors produced by Gaussian elimination may mix signs even
/// when a semi-positive combination exists, so in addition to filtering
/// the basis this searches pairwise integer combinations
/// (`vᵢ + vⱼ`, `vᵢ − vⱼ`) and keeps the semi-positive ones, normalized
/// to coprime weights and deduplicated. The result is sound but not
/// complete: every returned vector is a true P-invariant, but a place
/// covered by *some* semi-positive invariant may still be missed —
/// callers deriving bounds must treat uncovered places as "unknown",
/// never as "unbounded is proven".
pub fn semi_positive_p_invariants(net: &Net) -> Vec<PInvariant> {
    let basis = p_invariants(net);
    let mut out: Vec<PInvariant> = Vec::new();
    let push = |weights: Vec<i64>, out: &mut Vec<PInvariant>| {
        if weights.iter().all(|&w| w == 0) || weights.iter().any(|&w| w < 0) {
            return;
        }
        let g = weights
            .iter()
            .fold(0u64, |g, &w| gcd64(g, w.unsigned_abs()))
            .max(1) as i64;
        let inv = PInvariant {
            weights: weights.into_iter().map(|w| w / g).collect(),
        };
        if !out.contains(&inv) {
            out.push(inv);
        }
    };
    for v in &basis {
        push(v.weights.clone(), &mut out);
    }
    for (i, a) in basis.iter().enumerate() {
        for b in basis.iter().skip(i + 1) {
            if a.is_semi_positive() && b.is_semi_positive() {
                // Their sum is a weaker invariant covering no new place.
                continue;
            }
            let zip = |f: fn(i64, i64) -> i64| -> Vec<i64> {
                a.weights
                    .iter()
                    .zip(&b.weights)
                    .map(|(&x, &y)| f(x, y))
                    .collect()
            };
            push(zip(|x, y| x + y), &mut out);
            push(zip(|x, y| x - y), &mut out);
            push(zip(|x, y| y - x), &mut out);
        }
    }
    out
}

/// A basis of the T-invariant space (right null space of the incidence
/// matrix).
pub fn t_invariants(net: &Net) -> Vec<TInvariant> {
    let c = incidence_matrix(net);
    null_space(&c, net.transition_count())
        .into_iter()
        .map(|weights| TInvariant { weights })
        .collect()
}

fn transpose(m: &[Vec<i64>]) -> Vec<Vec<i64>> {
    let cols = m.first().map(Vec::len).unwrap_or(0);
    (0..cols)
        .map(|j| m.iter().map(|row| row[j]).collect())
        .collect()
}

/// Exact rational arithmetic on i128.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Rat {
    num: i128,
    den: i128, // > 0
}

impl Rat {
    fn int(v: i128) -> Self {
        Rat { num: v, den: 1 }
    }

    fn zero() -> Self {
        Rat::int(0)
    }

    fn is_zero(self) -> bool {
        self.num == 0
    }

    fn reduce(num: i128, den: i128) -> Self {
        debug_assert!(den != 0);
        let g = gcd128(num.unsigned_abs(), den.unsigned_abs()) as i128;
        let sign = if den < 0 { -1 } else { 1 };
        Rat {
            num: sign * num / g.max(1),
            den: (den / g.max(1)).abs().max(1),
        }
    }

    fn sub_mul(self, factor: Rat, other: Rat) -> Rat {
        // self - factor * other
        let num = self.num * factor.den * other.den - factor.num * other.num * self.den;
        let den = self.den * factor.den * other.den;
        Rat::reduce(num, den)
    }

    fn div(self, other: Rat) -> Rat {
        Rat::reduce(self.num * other.den, self.den * other.num)
    }
}

fn gcd128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

fn gcd64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Null space basis of `A·x = 0` (rows × `cols`), as coprime integer
/// vectors with positive leading entry.
#[allow(clippy::needless_range_loop)] // Gaussian elimination reads clearest with indices
fn null_space(a: &[Vec<i64>], cols: usize) -> Vec<Vec<i64>> {
    // Rational row-echelon form.
    let mut m: Vec<Vec<Rat>> = a
        .iter()
        .map(|row| row.iter().map(|&v| Rat::int(v as i128)).collect())
        .collect();
    let rows = m.len();
    let mut pivot_col_of_row = Vec::new();
    let mut row = 0;
    for col in 0..cols {
        // Find a pivot.
        let Some(pr) = (row..rows).find(|&r| !m[r][col].is_zero()) else {
            continue;
        };
        m.swap(row, pr);
        let pivot = m[row][col];
        for c in col..cols {
            m[row][c] = m[row][c].div(pivot);
        }
        for r in 0..rows {
            if r != row && !m[r][col].is_zero() {
                let factor = m[r][col];
                for c in col..cols {
                    m[r][c] = m[r][c].sub_mul(factor, m[row][c]);
                }
            }
        }
        pivot_col_of_row.push(col);
        row += 1;
        if row == rows {
            break;
        }
    }

    let pivot_cols: Vec<usize> = pivot_col_of_row.clone();
    let free_cols: Vec<usize> = (0..cols).filter(|c| !pivot_cols.contains(c)).collect();

    let mut basis = Vec::new();
    for &free in &free_cols {
        // x[free] = 1, other free vars 0; pivots from echelon rows.
        let mut x = vec![Rat::zero(); cols];
        x[free] = Rat::int(1);
        for (r, &pc) in pivot_cols.iter().enumerate() {
            // row r: x[pc] + Σ m[r][c]·x[c] = 0 over non-pivot c.
            x[pc] = Rat::zero().sub_mul(m[r][free], Rat::int(1));
        }
        // Scale to integers: multiply by lcm of denominators.
        let mut lcm: i128 = 1;
        for v in &x {
            lcm = lcm / gcd128(lcm.unsigned_abs(), v.den.unsigned_abs()) as i128 * v.den;
        }
        let mut ints: Vec<i64> = x.iter().map(|v| (v.num * (lcm / v.den)) as i64).collect();
        // Normalize: coprime, positive leading nonzero entry.
        let g = ints.iter().map(|v| v.unsigned_abs()).fold(0u64, gcd64_acc);
        if g > 1 {
            for v in &mut ints {
                *v /= g as i64;
            }
        }
        if let Some(first) = ints.iter().find(|&&v| v != 0) {
            if *first < 0 {
                for v in &mut ints {
                    *v = -*v;
                }
            }
        }
        basis.push(ints);
    }
    basis
}

fn gcd64_acc(acc: u64, v: u64) -> u64 {
    if acc == 0 {
        v
    } else if v == 0 {
        acc
    } else {
        gcd64(acc, v)
    }
}

/// Verify that `weights` is a P-invariant of `net` (`yᵀ·C = 0`).
pub fn verify_p_invariant(net: &Net, weights: &[i64]) -> bool {
    if weights.len() != net.place_count() {
        return false;
    }
    let c = incidence_matrix(net);
    (0..net.transition_count()).all(|t| {
        (0..net.place_count())
            .map(|p| weights[p] * c[p][t])
            .sum::<i64>()
            == 0
    })
}

/// Verify that `weights` is a T-invariant of `net` (`C·x = 0`).
pub fn verify_t_invariant(net: &Net, weights: &[i64]) -> bool {
    if weights.len() != net.transition_count() {
        return false;
    }
    let c = incidence_matrix(net);
    c.iter()
        .all(|row| row.iter().zip(weights).map(|(&a, &x)| a * x).sum::<i64>() == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    fn bus_net() -> Net {
        let mut b = NetBuilder::new("bus");
        b.place("free", 1);
        b.place("busy", 0);
        b.transition("seize").input("free").output("busy").add();
        b.transition("release").input("busy").output("free").add();
        b.build().unwrap()
    }

    #[test]
    fn bus_pair_p_invariant() {
        let net = bus_net();
        let inv = p_invariants(&net);
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].weights, vec![1, 1]);
        assert!(inv[0].is_semi_positive());
        assert!(verify_p_invariant(&net, &inv[0].weights));
        assert_eq!(inv[0].support().len(), 2);
    }

    #[test]
    fn bus_pair_t_invariant() {
        let net = bus_net();
        let inv = t_invariants(&net);
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].weights, vec![1, 1], "seize+release restores marking");
        assert!(inv[0].is_semi_positive());
        assert!(verify_t_invariant(&net, &inv[0].weights));
    }

    #[test]
    fn weighted_arcs_scale_invariants() {
        // a --2--> t --1--> b: invariant is a + 2b.
        let mut b = NetBuilder::new("w");
        b.place("a", 4);
        b.place("bp", 0);
        b.transition("t").input_weighted("a", 2).output("bp").add();
        b.transition("back")
            .input("bp")
            .output_weighted("a", 2)
            .add();
        let net = b.build().unwrap();
        let inv = p_invariants(&net);
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].weights, vec![1, 2]);
        assert_eq!(inv[0].token_sum(&net.initial_marking()), 4);
    }

    #[test]
    fn source_transition_breaks_conservation() {
        let mut b = NetBuilder::new("src");
        b.place("p", 0);
        b.transition("gen").output("p").enabling(1).add();
        let net = b.build().unwrap();
        assert!(p_invariants(&net).is_empty(), "nothing is conserved");
        assert!(t_invariants(&net).is_empty(), "no firing vector restores");
    }

    #[test]
    fn pipeline_fragment_has_expected_invariants() {
        // Two independent rings share a transition: invariant space has
        // dimension 2.
        let mut b = NetBuilder::new("two_rings");
        b.place("a1", 1);
        b.place("a2", 0);
        b.place("b1", 1);
        b.place("b2", 0);
        b.transition("both")
            .input("a1")
            .input("b1")
            .output("a2")
            .output("b2")
            .add();
        b.transition("ra").input("a2").output("a1").add();
        b.transition("rb").input("b2").output("b1").add();
        let net = b.build().unwrap();
        let inv = p_invariants(&net);
        assert_eq!(inv.len(), 2);
        for i in &inv {
            assert!(verify_p_invariant(&net, &i.weights));
        }
    }

    #[test]
    fn verify_rejects_non_invariants() {
        let net = bus_net();
        assert!(!verify_p_invariant(&net, &[1, 0]));
        assert!(!verify_p_invariant(&net, &[1])); // wrong length
        assert!(!verify_t_invariant(&net, &[1, 0]));
        assert!(!verify_t_invariant(&net, &[1, 1, 1])); // wrong length
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn token_sum_checks_length() {
        let inv = PInvariant {
            weights: vec![1, 1],
        };
        let _ = inv.token_sum(&Marking::new(3));
    }
}
