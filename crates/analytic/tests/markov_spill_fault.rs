//! Spill fault injection through the markov pipeline: a reload that
//! fails during chain extraction or the place-average sweep must
//! surface as [`MarkovError::Reach`] — never a panic — and the
//! uninjected retry must match the fully resident run bit for bit.
//!
//! Lives in its own test binary: the [`pnut_reach::pager::fail`]
//! countdowns are process-global, so these tests may not share a
//! process with the reach-crate injection suite.

use std::sync::Mutex;

use pnut_analytic::markov::{steady_state, MarkovError, MarkovOptions};
use pnut_core::NetBuilder;
use pnut_reach::graph::{build_timed, ReachOptions};
use pnut_reach::pager::fail::{fail_nth_spill_read, reset_spill_failures};
use pnut_reach::ReachError;

/// Serializes the tests (the injection counters are process-global)
/// and guarantees they are disarmed afterwards even if a test panics.
static HOOKS: Mutex<()> = Mutex::new(());

struct Armed<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

fn arm<'a>() -> Armed<'a> {
    Armed(HOOKS.lock().unwrap_or_else(|e| e.into_inner()))
}

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        reset_spill_failures();
        pnut_obs::uninstall();
    }
}

/// A timed token ring wide enough (128 places × 4 bytes per marking)
/// that its graph outgrows a 64 KiB budget: `step` moves tokens
/// `src`→`dst` in 2 ticks, `back` returns them in 1, and the shared
/// `lock` keeps at most one firing in flight so the timed state space
/// stays a manageable ~O(tokens) cycle with no deadlock.
fn wide_ring_net() -> pnut_core::Net {
    let mut b = NetBuilder::new("wide_ring");
    b.place("src", 100);
    b.place("dst", 0);
    b.place("lock", 1);
    for p in 0..125 {
        b.place(format!("w{p}"), 1);
    }
    b.transition("step")
        .input("src")
        .input("lock")
        .output("dst")
        .output("lock")
        .firing(2)
        .add();
    b.transition("back")
        .input("dst")
        .input("lock")
        .output("src")
        .output("lock")
        .firing(1)
        .add();
    b.build().expect("builds")
}

fn paged_options(jobs: usize) -> MarkovOptions {
    MarkovOptions {
        jobs,
        mem_budget: 64 * 1024,
        ..MarkovOptions::default()
    }
}

fn expect_read_spill(err: MarkovError) {
    match err {
        MarkovError::Reach(ReachError::Spill(e)) => {
            assert_eq!(e.op, "read", "wrong failing op: {e}");
        }
        other => panic!("expected MarkovError::Reach(Spill), got {other:?}"),
    }
}

/// Precise phase landings at jobs=1 (fault counts are deterministic):
/// fail the first reload *after* the build — the opening fault of the
/// chain-extraction sweep — and the last reload of the whole analysis,
/// which lands in the closing place-average sweep.
#[test]
fn extraction_and_average_sweeps_survive_injected_reload_failure() {
    let _g = arm();
    let net = wide_ring_net();
    let options = paged_options(1);
    let resident = steady_state(&net, &MarkovOptions::default()).expect("resident run");

    pnut_obs::install();
    let faults = || pnut_obs::snapshot().counter("pager.faults");

    // Meter the build alone, then the whole analysis, with the same
    // graph options `steady_state` uses internally.
    let before = faults();
    let g = build_timed(
        &net,
        &ReachOptions {
            max_states: options.max_states,
            jobs: options.jobs,
            mem_budget: options.mem_budget,
            spill_dir: options.spill_dir.clone(),
        },
    )
    .expect("bounded build");
    let build_faults = faults() - before;
    assert!(g.spilled_bytes() > 0, "the ring must outgrow 64 KiB");
    drop(g);

    let before = faults();
    let clean = steady_state(&net, &options).expect("clean paged run");
    let total_faults = faults() - before;
    assert_eq!(clean, resident, "paged run != resident run");
    assert!(
        total_faults > build_faults,
        "the analysis sweeps must fault ({total_faults} total vs {build_faults} build)"
    );

    // First post-build reload: chain extraction's opening fault.
    fail_nth_spill_read(build_faults + 1);
    expect_read_spill(steady_state(&net, &options).expect_err("extraction must fail"));
    reset_spill_failures();

    // Last reload of the analysis: the place-average sweep.
    fail_nth_spill_read(total_faults);
    expect_read_spill(steady_state(&net, &options).expect_err("average sweep must fail"));
    reset_spill_failures();

    let retry = steady_state(&net, &options).expect("uninjected retry");
    assert_eq!(retry, resident, "retry is not bit-identical to resident");
}

/// jobs=4: parallel fault ordering is not deterministic enough to pin
/// a phase, but the *first* reload of the run is — and wherever it
/// lands (parallel build or extraction), the failure must come back as
/// a typed error with the process alive and the retry bit-identical.
#[test]
fn parallel_markov_survives_injected_reload_failure() {
    let _g = arm();
    let net = wide_ring_net();
    let options = paged_options(4);
    let resident = steady_state(&net, &MarkovOptions::default()).expect("resident run");

    fail_nth_spill_read(1);
    expect_read_spill(steady_state(&net, &options).expect_err("first reload must fail"));
    reset_spill_failures();

    let retry = steady_state(&net, &options).expect("uninjected retry");
    assert_eq!(retry, resident, "retry is not bit-identical to resident");
}
