#![forbid(unsafe_code)]

//! # pnut-analytic — analytical performance evaluation
//!
//! The paper's conclusion notes that "other tools support analytical (as
//! opposed to simulation) performance evaluation". This crate provides
//! the classical analytical result for timed Petri nets, due to
//! Ramchandani (`[Ram74]` in the paper's bibliography): for a *timed
//! marked graph* — a net where every place has exactly one producing and
//! one consuming transition and all arcs have weight 1 — the steady-state
//! **cycle time** is exact:
//!
//! ```text
//! CT = max over directed circuits C of  D(C) / N(C)
//! ```
//!
//! where `D(C)` is the total firing time of the transitions on `C` and
//! `N(C)` the token count on `C`'s places. In a strongly connected timed
//! marked graph every transition then fires at rate `1 / CT`.
//!
//! Unlike simulation this is a proof: no confidence intervals, no seeds.
//! The price is the restricted net class — which nonetheless covers
//! hardware pipelines without data-dependent choice, and provides exact
//! upper bounds ("what is the best this pipeline could do?") against
//! which simulated behaviour of richer models can be sanity-checked.
//!
//! # Example
//!
//! A two-stage pipeline ring: stage delays 3 and 2, one job in flight.
//!
//! ```
//! use pnut_analytic::{analyze, Ratio};
//! use pnut_core::NetBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetBuilder::new("two_stage");
//! b.place("s1_ready", 1);
//! b.place("s2_ready", 0);
//! b.transition("stage1").input("s1_ready").output("s2_ready").firing(3).add();
//! b.transition("stage2").input("s2_ready").output("s1_ready").firing(2).add();
//! let net = b.build()?;
//!
//! let result = analyze(&net)?;
//! assert_eq!(result.cycle_time, Ratio::new(5, 1)); // (3 + 2) / 1 token
//! assert!((result.throughput() - 0.2).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod markov;

use pnut_core::{Delay, Net, PlaceId, TransitionId};
use std::fmt;

/// An exact non-negative rational (ticks per firing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    /// Construct `num / den`, reduced.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "denominator must be non-zero");
        let g = gcd(num.max(1), den);
        Ratio {
            num: num / if num == 0 { 1 } else { g },
            den: den / if num == 0 { den } else { g },
        }
    }

    /// Numerator (reduced).
    pub fn numerator(self) -> u64 {
        self.num
    }

    /// Denominator (reduced).
    pub fn denominator(self) -> u64 {
        self.den
    }

    /// The value as `f64`.
    pub fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // a/b vs c/d  ⇔  a·d vs c·b (all non-negative, u128 can't overflow).
        let left = u128::from(self.num) * u128::from(other.den);
        let right = u128::from(other.num) * u128::from(self.den);
        left.cmp(&right)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Why a net is outside the analyzable class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyticError {
    /// A place does not have exactly one producer and one consumer.
    NotMarkedGraph {
        /// The offending place.
        place: String,
        /// Producers found.
        producers: usize,
        /// Consumers found.
        consumers: usize,
    },
    /// An arc has weight other than 1.
    WeightedArc {
        /// The transition carrying the arc.
        transition: String,
    },
    /// The transition uses an inhibitor arc, predicate, action, or
    /// enabling time — outside the marked-graph class.
    NotPlainTimed {
        /// The offending transition.
        transition: String,
    },
    /// A firing time is an expression, not a constant.
    NonConstantDelay {
        /// The offending transition.
        transition: String,
    },
    /// A circuit carries no tokens: the net deadlocks (cycle time ∞).
    TokenFreeCircuit {
        /// The transitions on the dead circuit.
        circuit: Vec<String>,
    },
    /// The marked graph is not strongly connected, so no single cycle
    /// time governs every transition.
    NotStronglyConnected,
    /// The net has no circuits at all (acyclic): throughput is not
    /// circuit-limited.
    Acyclic,
}

impl fmt::Display for AnalyticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyticError::NotMarkedGraph {
                place,
                producers,
                consumers,
            } => write!(
                f,
                "place `{place}` has {producers} producer(s) and {consumers} consumer(s); a marked graph needs exactly 1/1"
            ),
            AnalyticError::WeightedArc { transition } => {
                write!(f, "transition `{transition}` has a weighted arc")
            }
            AnalyticError::NotPlainTimed { transition } => write!(
                f,
                "transition `{transition}` uses inhibitors/predicates/actions/enabling times"
            ),
            AnalyticError::NonConstantDelay { transition } => {
                write!(f, "transition `{transition}` has an expression-valued firing time")
            }
            AnalyticError::TokenFreeCircuit { circuit } => {
                write!(f, "token-free circuit (deadlock): {}", circuit.join(" -> "))
            }
            AnalyticError::NotStronglyConnected => {
                write!(f, "marked graph is not strongly connected")
            }
            AnalyticError::Acyclic => write!(f, "net has no circuits; throughput is unbounded"),
        }
    }
}

impl std::error::Error for AnalyticError {}

/// Result of cycle-time analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleTimeAnalysis {
    /// The exact steady-state cycle time (ticks per firing of every
    /// transition).
    pub cycle_time: Ratio,
    /// A critical circuit achieving the maximum ratio, as transitions in
    /// circuit order.
    pub critical_cycle: Vec<TransitionId>,
    /// Number of simple circuits examined.
    pub circuits_examined: usize,
}

impl CycleTimeAnalysis {
    /// Steady-state firings per tick of every transition (`1 / CT`).
    pub fn throughput(&self) -> f64 {
        1.0 / self.cycle_time.as_f64()
    }
}

/// Check the marked-graph preconditions and return, per place, its
/// producer and consumer.
fn marked_graph_edges(
    net: &Net,
) -> Result<Vec<(PlaceId, TransitionId, TransitionId)>, AnalyticError> {
    for (_, t) in net.transitions() {
        if !t.inhibitors().is_empty()
            || t.predicate().is_some()
            || t.action().is_some()
            || !t.enabling_time().is_zero_constant()
        {
            return Err(AnalyticError::NotPlainTimed {
                transition: t.name().to_string(),
            });
        }
        if t.inputs().iter().chain(t.outputs()).any(|&(_, w)| w != 1) {
            return Err(AnalyticError::WeightedArc {
                transition: t.name().to_string(),
            });
        }
        if let Delay::Expr(_) = t.firing_time() {
            return Err(AnalyticError::NonConstantDelay {
                transition: t.name().to_string(),
            });
        }
    }
    let mut edges = Vec::with_capacity(net.place_count());
    for (pid, p) in net.places() {
        let producers = net.producers(pid);
        let consumers = net.consumers(pid);
        if producers.len() != 1 || consumers.len() != 1 {
            return Err(AnalyticError::NotMarkedGraph {
                place: p.name().to_string(),
                producers: producers.len(),
                consumers: consumers.len(),
            });
        }
        edges.push((pid, producers[0], consumers[0]));
    }
    Ok(edges)
}

fn firing_ticks(net: &Net, t: TransitionId) -> u64 {
    match net.transition(t).firing_time() {
        Delay::Fixed(d) => *d,
        Delay::Expr(_) => unreachable!("checked by marked_graph_edges"),
    }
}

/// Analyze a strongly connected timed marked graph.
///
/// # Errors
///
/// See [`AnalyticError`] for each precondition violation.
pub fn analyze(net: &Net) -> Result<CycleTimeAnalysis, AnalyticError> {
    let edges = marked_graph_edges(net)?;
    let n = net.transition_count();
    // Adjacency: producer -> consumer, labeled by the place.
    let mut adj: Vec<Vec<(usize, PlaceId)>> = vec![Vec::new(); n];
    for &(p, from, to) in &edges {
        adj[from.index()].push((to.index(), p));
    }

    if n == 0 || edges.is_empty() {
        return Err(AnalyticError::Acyclic);
    }
    if !strongly_connected(&adj, n) {
        return Err(AnalyticError::NotStronglyConnected);
    }

    // Enumerate simple circuits (Johnson-style DFS restricted to start
    // nodes >= current root to avoid duplicates). Model nets are small;
    // this is exact and yields the critical circuit directly.
    let initial = net.initial_marking();
    let mut best: Option<(Ratio, Vec<TransitionId>)> = None;
    let mut examined = 0usize;

    for root in 0..n {
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)]; // (node, next edge idx)
        let mut path: Vec<(usize, PlaceId)> = Vec::new(); // (node, place entering it)
        let mut on_path = vec![false; n];
        on_path[root] = true;
        while let Some(&mut (node, ref mut edge_idx)) = stack.last_mut() {
            if *edge_idx < adj[node].len() {
                let (next, place) = adj[node][*edge_idx];
                *edge_idx += 1;
                if next == root {
                    // Found a circuit root -> ... -> node -> root.
                    examined += 1;
                    let mut transitions = vec![TransitionId::new(root)];
                    transitions.extend(path.iter().map(|&(v, _)| TransitionId::new(v)));
                    let mut places: Vec<PlaceId> = path.iter().map(|&(_, pl)| pl).collect();
                    places.push(place);
                    let delay: u64 = transitions.iter().map(|&t| firing_ticks(net, t)).sum();
                    let tokens: u64 = places.iter().map(|&pl| u64::from(initial.tokens(pl))).sum();
                    if tokens == 0 {
                        return Err(AnalyticError::TokenFreeCircuit {
                            circuit: transitions
                                .iter()
                                .map(|&t| net.transition(t).name().to_string())
                                .collect(),
                        });
                    }
                    let ratio = Ratio::new(delay, tokens);
                    if best.as_ref().is_none_or(|(b, _)| ratio > *b) {
                        best = Some((ratio, transitions));
                    }
                } else if next > root && !on_path[next] {
                    on_path[next] = true;
                    path.push((next, place));
                    stack.push((next, 0));
                }
            } else {
                stack.pop();
                if node != root {
                    on_path[node] = false;
                    path.pop();
                }
            }
        }
    }

    match best {
        Some((cycle_time, critical_cycle)) => Ok(CycleTimeAnalysis {
            cycle_time,
            critical_cycle,
            circuits_examined: examined,
        }),
        None => Err(AnalyticError::Acyclic),
    }
}

fn strongly_connected(adj: &[Vec<(usize, PlaceId)>], n: usize) -> bool {
    let reach = |adj_fn: &dyn Fn(usize) -> Vec<usize>| {
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for w in adj_fn(v) {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        seen.into_iter().all(|s| s)
    };
    let fwd = reach(&|v| adj[v].iter().map(|&(w, _)| w).collect());
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, row) in adj.iter().enumerate() {
        for &(w, _) in row {
            radj[w].push(v);
        }
    }
    let bwd = reach(&|v| radj[v].clone());
    fwd && bwd
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::{NetBuilder, Time};

    fn ring(delays: &[u64], tokens: u32) -> Net {
        let mut b = NetBuilder::new("ring");
        let n = delays.len();
        for i in 0..n {
            b.place(format!("p{i}"), if i == 0 { tokens } else { 0 });
        }
        for (i, &d) in delays.iter().enumerate() {
            b.transition(format!("t{i}"))
                .input(format!("p{i}"))
                .output(format!("p{}", (i + 1) % n))
                .firing(d)
                .add();
        }
        b.build().unwrap()
    }

    #[test]
    fn single_ring_cycle_time() {
        let net = ring(&[3, 2], 1);
        let r = analyze(&net).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(5, 1));
        assert_eq!(r.critical_cycle.len(), 2);
        assert_eq!(r.circuits_examined, 1);
    }

    #[test]
    fn tokens_divide_cycle_time() {
        // Two jobs in flight halve the cycle time.
        let net = ring(&[3, 2, 5], 2);
        let r = analyze(&net).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(10, 2));
        assert_eq!(r.cycle_time, Ratio::new(5, 1), "reduced");
        assert!((r.throughput() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn critical_cycle_dominates() {
        // Two rings sharing transition t0: slow ring (delay 10, 1 token)
        // and fast ring (delay 2, 1 token). CT = 10+1 = 11? Build:
        // t0 (1 tick) on both rings; ring A: t0->a->t1(10)->b->t0;
        // ring B: t0->c->t2(2)->d->t0.
        let mut b = NetBuilder::new("two_rings");
        b.places_empty(["a", "bq", "c", "dq"]);
        b.place("start_a", 1);
        b.place("start_b", 1);
        b.transition("t0")
            .input("start_a")
            .input("start_b")
            .output("a")
            .output("c")
            .firing(1)
            .add();
        b.transition("t1").input("a").output("bq").firing(10).add();
        b.transition("back_a").input("bq").output("start_a").add();
        b.transition("t2").input("c").output("dq").firing(2).add();
        b.transition("back_b").input("dq").output("start_b").add();
        let net = b.build().unwrap();
        let r = analyze(&net).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(11, 1), "slow ring limits");
        let names: Vec<&str> = r
            .critical_cycle
            .iter()
            .map(|&t| net.transition(t).name())
            .collect();
        assert!(
            names.contains(&"t1"),
            "critical cycle passes the slow stage"
        );
    }

    #[test]
    fn analytic_matches_simulation() {
        let net = ring(&[4, 3], 1);
        let r = analyze(&net).unwrap();
        let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(7_000)).unwrap();
        let report = pnut_stat::analyze(&trace);
        let simulated = report.transition("t0").unwrap().throughput;
        assert!(
            (simulated - r.throughput()).abs() < 0.01,
            "analytic {} vs simulated {}",
            r.throughput(),
            simulated
        );
    }

    #[test]
    fn token_free_circuit_is_deadlock() {
        let net = ring(&[1, 1], 0);
        assert!(matches!(
            analyze(&net),
            Err(AnalyticError::TokenFreeCircuit { .. })
        ));
    }

    #[test]
    fn class_violations_reported() {
        // Choice place: two consumers.
        let mut b = NetBuilder::new("choice");
        b.place("p", 1);
        b.places_empty(["x", "y"]);
        b.transition("a").input("p").output("x").add();
        b.transition("bt").input("p").output("y").add();
        b.transition("ra").input("x").output("p").add();
        b.transition("rb").input("y").output("p").add();
        let net = b.build().unwrap();
        assert!(matches!(
            analyze(&net),
            Err(AnalyticError::NotMarkedGraph { .. })
        ));

        // Weighted arc.
        let mut b = NetBuilder::new("w");
        b.place("p", 2);
        b.place("q", 0);
        b.transition("t").input_weighted("p", 2).output("q").add();
        b.transition("r").input("q").output_weighted("p", 2).add();
        let net = b.build().unwrap();
        assert!(matches!(
            analyze(&net),
            Err(AnalyticError::WeightedArc { .. })
        ));

        // Enabling time.
        let mut b = NetBuilder::new("e");
        b.place("p", 1);
        b.place("q", 0);
        b.transition("t").input("p").output("q").enabling(2).add();
        b.transition("r").input("q").output("p").add();
        let net = b.build().unwrap();
        assert!(matches!(
            analyze(&net),
            Err(AnalyticError::NotPlainTimed { .. })
        ));
    }

    #[test]
    fn disconnected_rejected() {
        let mut b = NetBuilder::new("disc");
        b.place("p", 1);
        b.place("q", 1);
        b.transition("t").input("p").output("p").firing(1).add();
        b.transition("u").input("q").output("q").firing(1).add();
        let net = b.build().unwrap();
        assert_eq!(analyze(&net), Err(AnalyticError::NotStronglyConnected));
    }

    #[test]
    fn ratio_ordering_and_display() {
        assert!(Ratio::new(5, 1) > Ratio::new(9, 2));
        assert_eq!(Ratio::new(10, 4), Ratio::new(5, 2));
        assert_eq!(Ratio::new(5, 2).to_string(), "5/2");
        assert_eq!(Ratio::new(5, 1).to_string(), "5");
        assert_eq!(Ratio::new(0, 7).as_f64(), 0.0);
    }
}
