//! Steady-state analysis via the embedded Markov chain.
//!
//! Cycle-time analysis ([`crate::analyze`]) is exact but limited to
//! marked graphs — no choice. For nets *with* probabilistic choice, the
//! timed reachability graph `[RP84]` plus the firing-frequency semantics
//! `[WPS86]` induce a semi-Markov process:
//!
//! * in a state where transitions can start, one is chosen with
//!   probability proportional to its relative firing frequency and the
//!   move is instantaneous (sojourn 0);
//! * in a state where only time can pass, the single `Advance(dt)` edge
//!   is taken with probability 1 after a sojourn of `dt` ticks.
//!
//! The long-run fraction of time spent in each state is the stationary
//! distribution of the embedded jump chain weighted by sojourn times;
//! from it follow *analytical* place utilizations and transition
//! throughputs — the numbers `stat` estimates from one random trace,
//! computed here without any randomness at all.
//!
//! The construction matches the simulator's semantics, so the two agree
//! up to sampling noise (tested).

use pnut_core::{Net, PlaceId, TransitionId};
use pnut_obs as obs;
use pnut_reach::graph::{build_timed, EdgeLabel, ReachOptions, ReachabilityGraph};
use std::fmt;

/// Why steady-state analysis failed.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// The timed reachability graph could not be built (randomness,
    /// state explosion, evaluation failures, ...), or a spilled
    /// segment failed to reload during the segment-ordered chain
    /// extraction.
    Reach(pnut_reach::ReachError),
    /// The graph has deadlock states: the long-run behaviour is
    /// absorption, not a steady state.
    Deadlock {
        /// A deadlocked state index.
        state: usize,
    },
    /// The chain never lets time pass (a zero-delay cycle): sojourn
    /// times are all zero and utilization is undefined.
    Zeno,
    /// The graph is too large for dense analysis.
    TooLarge {
        /// States found.
        states: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The iteration did not converge (pathological chain).
    NoConvergence,
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::Reach(e) => write!(f, "timed reachability failed: {e}"),
            MarkovError::Deadlock { state } => {
                write!(f, "state {state} deadlocks; no steady state exists")
            }
            MarkovError::Zeno => write!(f, "no time ever passes (zero-delay cycle)"),
            MarkovError::TooLarge { states, cap } => {
                write!(f, "{states} states exceed the analysis cap of {cap}")
            }
            MarkovError::NoConvergence => write!(f, "stationary iteration did not converge"),
        }
    }
}

impl std::error::Error for MarkovError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MarkovError::Reach(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pnut_reach::ReachError> for MarkovError {
    fn from(e: pnut_reach::ReachError) -> Self {
        MarkovError::Reach(e)
    }
}

/// Limits for the analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovOptions {
    /// Maximum states for the dense chain.
    pub max_states: usize,
    /// Power-iteration sweep cap.
    pub max_iterations: usize,
    /// L1 convergence tolerance on the running average.
    pub tolerance: f64,
    /// Worker threads for the underlying timed reachability build (see
    /// [`pnut_reach::ReachOptions::jobs`]); the chain extraction itself
    /// is dense linear algebra and stays single-threaded.
    pub jobs: usize,
    /// Resident byte budget for the reachability build's state and
    /// edge arenas (see [`pnut_reach::ReachOptions::mem_budget`]). The
    /// chain extraction and the place-average pass honor it by
    /// scanning the *graph* segment-at-a-time instead of faulting it
    /// resident — but the budget governs the graph arenas only: the
    /// extracted jump chain itself (one `(target, probability, label)`
    /// entry per edge, plus the `O(states)` iteration vectors) is dense
    /// and stays unconditionally in memory, outside the pager ledger.
    /// The dense-chain cap is [`Self::max_states`]; paging the chain is
    /// not attempted.
    pub mem_budget: usize,
    /// Spill directory for the reachability build (see
    /// [`pnut_reach::ReachOptions::spill_dir`]).
    pub spill_dir: Option<std::path::PathBuf>,
}

impl Default for MarkovOptions {
    fn default() -> Self {
        MarkovOptions {
            max_states: 20_000,
            max_iterations: 200_000,
            tolerance: 1e-12,
            jobs: 1,
            mem_budget: usize::MAX,
            spill_dir: None,
        }
    }
}

/// Analytical steady-state quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyState {
    /// Long-run fraction of *time* spent in each reachability-graph
    /// state.
    pub state_fraction: Vec<f64>,
    /// Time-average token count per place (place-id order) — the
    /// analytical counterpart of the Figure 5 "Avg Tokens" column.
    pub place_average_tokens: Vec<f64>,
    /// Firings per tick per transition (transition-id order) — the
    /// analytical counterpart of the "Throughput" column.
    pub transition_throughput: Vec<f64>,
    /// Mean ticks per embedded jump (the normalization constant).
    pub mean_sojourn: f64,
}

impl SteadyState {
    /// Average tokens of one place.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn avg_tokens(&self, place: PlaceId) -> f64 {
        self.place_average_tokens[place.index()]
    }

    /// Throughput of one transition.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn throughput(&self, transition: TransitionId) -> f64 {
        self.transition_throughput[transition.index()]
    }
}

/// Compute the steady state of `net` (no randomness; constant or
/// deterministic table-driven firing times; constant enabling times —
/// the timed-reachability class, which covers the paper's §2/§3
/// pipeline models including the cache-enabled configurations).
///
/// # Errors
///
/// See [`MarkovError`].
///
/// # Example
///
/// ```
/// use pnut_analytic::markov::{steady_state, MarkovOptions};
/// use pnut_core::NetBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetBuilder::new("ring");
/// b.place("a", 1);
/// b.place("b", 0);
/// b.transition("ab").input("a").output("b").firing(3).add();
/// b.transition("ba").input("b").output("a").firing(1).add();
/// let net = b.build()?;
/// let ss = steady_state(&net, &MarkovOptions::default())?;
/// // Each transition completes once per 4-tick cycle.
/// let ab = net.transition_id("ab").unwrap();
/// assert!((ss.throughput(ab) - 0.25).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[allow(clippy::needless_range_loop)] // matrix/state indexing reads clearest with indices
pub fn steady_state(net: &Net, options: &MarkovOptions) -> Result<SteadyState, MarkovError> {
    let mut graph = build_timed(
        net,
        &ReachOptions {
            max_states: options.max_states,
            jobs: options.jobs,
            mem_budget: options.mem_budget,
            spill_dir: options.spill_dir.clone(),
        },
    )?;
    let n = graph.state_count();
    if n > options.max_states {
        return Err(MarkovError::TooLarge {
            states: n,
            cap: options.max_states,
        });
    }
    // Phase-scope the resident high-water mark: from here on the peak
    // measures the *analysis* sweeps, which promise to stay inside the
    // byte budget (verified below in debug builds).
    graph.reset_peak_resident_bytes();

    // Embedded jump chain: per state, (successor, probability, label).
    // Extracted segment-at-a-time — pin one segment's edge rows, scan
    // them, evict back under the byte budget — so the extraction phase
    // stays inside `mem_budget` instead of faulting the whole graph
    // resident. Deadlocks surface here too (segment order is state
    // order, so the first one found is the lowest-numbered, matching
    // the pre-paging behaviour of `deadlocks().first()`).
    let extract_span = obs::span("markov.extract");
    let mut jumps: Vec<Vec<(usize, f64, EdgeLabel)>> = Vec::with_capacity(n);
    let mut sojourn = vec![0.0f64; n];
    for seg in 0..graph.segment_count() {
        {
            let guard = graph.pin_segment(seg);
            for s in guard.range() {
                let edges = guard.successors(s)?;
                if edges.is_empty() {
                    return Err(MarkovError::Deadlock { state: s });
                }
                let fires: Vec<_> = edges
                    .iter()
                    .filter(|(l, _)| matches!(l, EdgeLabel::Fire(_)))
                    .collect();
                if !fires.is_empty() {
                    let total: f64 = fires
                        .iter()
                        .map(|&&(l, _)| match l {
                            EdgeLabel::Fire(t) => net.transition(t).frequency(),
                            EdgeLabel::Advance(_) => 0.0,
                        })
                        .sum();
                    jumps.push(
                        fires
                            .iter()
                            .map(|&&(l, to)| {
                                let f = match l {
                                    EdgeLabel::Fire(t) => net.transition(t).frequency(),
                                    EdgeLabel::Advance(_) => 0.0,
                                };
                                (to as usize, f / total, l)
                            })
                            .collect(),
                    );
                } else {
                    // Exactly one Advance edge (maximal-progress
                    // construction).
                    let &(label, to) = edges.first().expect("non-deadlock state has an edge");
                    let EdgeLabel::Advance(dt) = label else {
                        unreachable!("non-fire edge is an advance");
                    };
                    sojourn[s] = dt as f64;
                    jumps.push(vec![(to as usize, 1.0, label)]);
                }
            }
        }
        graph.maintain()?;
    }
    obs::metrics::MARKOV_EXTRACTED_EDGES.add(jumps.iter().map(|out| out.len() as u64).sum());
    drop(extract_span);
    if sojourn.iter().all(|&t| t == 0.0) {
        return Err(MarkovError::Zeno);
    }

    // The long-run behaviour lives in the bottom strongly connected
    // component reachable from the initial state (transient start-up
    // states have zero long-run weight). Physical models have exactly
    // one; several would mean the long run depends on random absorption
    // and no single steady state exists.
    let recurrent = bottom_scc(&jumps, n)?;

    // Stationary distribution of the jump chain on the recurrent class,
    // by power iteration on the *lazy* chain (P + I) / 2 — aperiodic by
    // construction with the same stationary vector, so convergence is
    // geometric even for periodic nets.
    let mut average = vec![0.0f64; n];
    {
        let members: Vec<usize> = (0..n).filter(|&s| recurrent[s]).collect();
        for &s in &members {
            average[s] = 1.0 / members.len() as f64;
        }
    }
    let solve_span = obs::span("markov.solve");
    let mut converged = false;
    for iter in 0..options.max_iterations {
        obs::metrics::MARKOV_SOLVER_ITERATIONS.inc();
        obs::heartbeat(iter as u64 + 1, || {
            format!(
                "markov solve: iteration {} of at most {}",
                iter + 1,
                options.max_iterations
            )
        });
        let mut next = vec![0.0f64; n];
        for (s, out) in jumps.iter().enumerate() {
            if average[s] == 0.0 {
                continue;
            }
            next[s] += 0.5 * average[s];
            for &(to, p, _) in out {
                next[to] += 0.5 * average[s] * p;
            }
        }
        let delta: f64 = next.iter().zip(&average).map(|(a, b)| (a - b).abs()).sum();
        average = next;
        if delta < options.tolerance {
            converged = true;
            break;
        }
    }
    drop(solve_span);
    if !converged {
        return Err(MarkovError::NoConvergence);
    }

    // Time-weight by sojourns.
    let mean_sojourn: f64 = average.iter().zip(&sojourn).map(|(&p, &t)| p * t).sum();
    if mean_sojourn <= 0.0 {
        return Err(MarkovError::Zeno);
    }
    let state_fraction: Vec<f64> = average
        .iter()
        .zip(&sojourn)
        .map(|(&p, &t)| p * t / mean_sojourn)
        .collect();

    // Place averages: Σ fraction(s) · tokens_s(p) — a second
    // segment-ordered sweep, this time over the marking rows.
    let places = net.place_count();
    let mut place_average_tokens = vec![0.0f64; places];
    for seg in 0..graph.segment_count() {
        {
            let guard = graph.pin_segment(seg);
            for s in guard.range() {
                let frac = state_fraction[s];
                if frac == 0.0 {
                    continue;
                }
                for (p, &tokens) in guard.marking(s)?.iter().enumerate() {
                    place_average_tokens[p] += frac * f64::from(tokens);
                }
            }
        }
        graph.maintain()?;
    }

    // The segment-ordered sweeps above promise the analysis-phase
    // resident envelope: budget + one pinned guard (state + edge
    // segment) + one segment of slack. Verify the promise whenever a
    // finite budget is set (debug builds only; the paged-analysis test
    // harness exercises this at a 64 KiB budget).
    #[cfg(debug_assertions)]
    if options.mem_budget != usize::MAX {
        let guard = graph.max_state_segment_bytes() + graph.max_edge_segment_bytes();
        let slack = guard
            + graph
                .max_state_segment_bytes()
                .max(graph.max_edge_segment_bytes());
        debug_assert!(
            graph.peak_resident_bytes() <= options.mem_budget + slack,
            "markov analysis phase peaked at {} resident bytes \
             (budget {} + guard/segment slack {})",
            graph.peak_resident_bytes(),
            options.mem_budget,
            slack
        );
    }

    // Throughput of t: expected Fire(t) jumps per tick
    //   = Σ_s π(s) · P(s fires t) / mean_sojourn.
    let mut transition_throughput = vec![0.0f64; net.transition_count()];
    for (s, out) in jumps.iter().enumerate() {
        for &(_, p, label) in out {
            if let EdgeLabel::Fire(t) = label {
                transition_throughput[t.index()] += average[s] * p;
            }
        }
    }
    for v in &mut transition_throughput {
        *v /= mean_sojourn;
    }

    Ok(SteadyState {
        state_fraction,
        place_average_tokens,
        transition_throughput,
        mean_sojourn,
    })
}

/// The set of states in the unique bottom SCC reachable from state 0.
///
/// # Errors
///
/// [`MarkovError::NoConvergence`] is *not* used here; multiple bottom
/// SCCs are reported as deadlock-like absence of a single steady state.
fn bottom_scc(jumps: &[Vec<(usize, f64, EdgeLabel)>], n: usize) -> Result<Vec<bool>, MarkovError> {
    // Tarjan-free approach: repeatedly test, for each state s reachable
    // from 0, whether s is in a bottom class: every state reachable from
    // s can reach s. Model graphs are small; O(n * edges) is fine.
    let reachable_from = |start: usize| -> Vec<bool> {
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            for &(w, _, _) in &jumps[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        seen
    };
    // Reverse adjacency for co-reachability.
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, out) in jumps.iter().enumerate() {
        for &(w, _, _) in out {
            reverse[w].push(v);
        }
    }
    let coreachable_of = |start: usize| -> Vec<bool> {
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            for &w in &reverse[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        seen
    };
    let from_initial = reachable_from(0);
    let mut recurrent = vec![false; n];
    let mut found_class_rep: Option<usize> = None;
    for s in 0..n {
        if !from_initial[s] || recurrent[s] {
            continue;
        }
        let reach_s = reachable_from(s);
        let coreach_s = coreachable_of(s);
        // s is recurrent iff everything reachable from s reaches s back.
        let is_recurrent = (0..n).filter(|&v| reach_s[v]).all(|v| coreach_s[v]);
        if is_recurrent {
            match found_class_rep {
                None => {
                    found_class_rep = Some(s);
                    for (v, r) in recurrent.iter_mut().enumerate() {
                        *r = reach_s[v];
                    }
                }
                Some(rep) => {
                    // Same class if s reaches rep.
                    if !reach_s[rep] {
                        return Err(MarkovError::NoConvergence);
                    }
                }
            }
        }
    }
    if found_class_rep.is_none() {
        return Err(MarkovError::NoConvergence);
    }
    Ok(recurrent)
}

/// Sanity shim so the module is reachable from the crate root docs.
pub(crate) fn _module_marker(_: &ReachabilityGraph) {}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::{NetBuilder, Time};

    fn ring(d1: u64, d2: u64) -> pnut_core::Net {
        let mut b = NetBuilder::new("ring");
        b.place("a", 1);
        b.place("bp", 0);
        b.transition("ab").input("a").output("bp").firing(d1).add();
        b.transition("ba").input("bp").output("a").firing(d2).add();
        b.build().unwrap()
    }

    #[test]
    fn deterministic_ring_exact() {
        let net = ring(3, 1);
        let ss = steady_state(&net, &MarkovOptions::default()).unwrap();
        let ab = net.transition_id("ab").unwrap();
        let ba = net.transition_id("ba").unwrap();
        assert!((ss.throughput(ab) - 0.25).abs() < 1e-9);
        assert!((ss.throughput(ba) - 0.25).abs() < 1e-9);
        // Tokens are inside transitions while firing: both places are
        // almost always empty in this net (instantaneous hand-offs
        // happen at measure-zero instants), so fractions reflect the
        // in-flight pattern instead; totals must stay in [0, 1].
        let a = net.place_id("a").unwrap();
        assert!(ss.avg_tokens(a) <= 1.0 + 1e-9);
        assert!(
            (ss.mean_sojourn - 1.0).abs() < 1e-9,
            "sojourns 0,3,0,1 over 4 jumps"
        );
        let total: f64 = ss.state_fraction.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probabilistic_choice_matches_simulation() {
        // One token; two competing service loops with different delays
        // and frequencies .7/.3 — a stochastic net the marked-graph tool
        // rejects.
        let mut b = NetBuilder::new("choice");
        b.place("idle", 1);
        b.place("fast_done", 0);
        b.place("slow_done", 0);
        b.transition("fast")
            .input("idle")
            .output("fast_done")
            .firing(1)
            .frequency(0.7)
            .add();
        b.transition("slow")
            .input("idle")
            .output("slow_done")
            .firing(5)
            .frequency(0.3)
            .add();
        b.transition("rf").input("fast_done").output("idle").add();
        b.transition("rs").input("slow_done").output("idle").add();
        let net = b.build().unwrap();

        assert!(crate::analyze(&net).is_err(), "not a marked graph");
        let ss = steady_state(&net, &MarkovOptions::default()).unwrap();

        let trace = pnut_sim::simulate(&net, 7, Time::from_ticks(200_000)).unwrap();
        let report = pnut_stat::analyze(&trace);
        for name in ["fast", "slow"] {
            let analytic = ss.throughput(net.transition_id(name).unwrap());
            let simulated = report.transition(name).unwrap().throughput;
            assert!(
                (analytic - simulated).abs() / simulated < 0.03,
                "{name}: analytic {analytic} vs simulated {simulated}"
            );
        }
        // Expected: per cycle, p=.7 takes 1 tick, p=.3 takes 5 → mean
        // cycle 0.7*1 + 0.3*5 = 2.2; fast throughput = .7/2.2.
        let fast = ss.throughput(net.transition_id("fast").unwrap());
        assert!((fast - 0.7 / 2.2).abs() < 1e-9);
    }

    #[test]
    fn place_occupancy_analytic() {
        // Token *rests* on places (zero firing times move it; holding
        // is modeled by a delayed drain): a -> (hold 3) -> b -> (hold 1) -> a.
        // Build with firing times on the move *out* of each place, so
        // `a` is occupied while `drain_a` is in flight... instead use a
        // structure where occupancy is visible: a holds the token while
        // `leave_a` (firing 0) is blocked by a timer loop. Simplest
        // observable case: tokens rest during *other* transitions'
        // firing.
        let mut b = NetBuilder::new("rest");
        b.place("waiting", 1);
        b.place("go", 0);
        b.place("spent", 0);
        // A 4-tick timer runs while the token waits on `waiting`.
        b.place("timer", 1);
        b.transition("tick")
            .input("timer")
            .output("go")
            .firing(4)
            .add();
        b.transition("move")
            .input("waiting")
            .input("go")
            .output("spent")
            .output("timer")
            .firing(1)
            .add();
        b.transition("reset").input("spent").output("waiting").add();
        let net = b.build().unwrap();
        let ss = steady_state(&net, &MarkovOptions::default()).unwrap();
        // Cycle: 4 ticks timing (waiting occupied) + 1 tick moving.
        let waiting = net.place_id("waiting").unwrap();
        assert!(
            (ss.avg_tokens(waiting) - 0.8).abs() < 1e-9,
            "waiting occupied 4 of 5 ticks: {}",
            ss.avg_tokens(waiting)
        );
    }

    #[test]
    fn deadlock_and_zeno_detected() {
        let mut b = NetBuilder::new("dead");
        b.place("p", 1);
        b.place("q", 0);
        b.transition("t").input("p").output("q").firing(1).add();
        let net = b.build().unwrap();
        assert!(matches!(
            steady_state(&net, &MarkovOptions::default()),
            Err(MarkovError::Deadlock { .. })
        ));

        let mut b = NetBuilder::new("zeno");
        b.place("p", 1);
        b.transition("t").input("p").output("p").add();
        let net = b.build().unwrap();
        // A zero-delay self-loop: the timed graph is 1 state with a Fire
        // self-edge and no Advance; no time ever passes.
        assert!(matches!(
            steady_state(&net, &MarkovOptions::default()),
            Err(MarkovError::Zeno)
        ));
    }

    #[test]
    fn enabling_time_nets_are_analyzed_exactly() {
        // An enabling-3 hand-off ring: one completion of each
        // transition every 3 ticks, with the token resting on `p`
        // throughout the wait (enabling does not remove tokens).
        let mut b = NetBuilder::new("en");
        b.place("p", 1);
        b.place("q", 0);
        b.transition("t").input("p").output("q").enabling(3).add();
        b.transition("r").input("q").output("p").add();
        let net = b.build().unwrap();
        let ss = steady_state(&net, &MarkovOptions::default()).unwrap();
        let t = net.transition_id("t").unwrap();
        assert!(
            (ss.throughput(t) - 1.0 / 3.0).abs() < 1e-9,
            "one firing per 3-tick enabling period, got {}",
            ss.throughput(t)
        );
        let p = net.place_id("p").unwrap();
        assert!(
            (ss.avg_tokens(p) - 1.0).abs() < 1e-9,
            "the token rests on `p` for the whole wait (atomic hand-offs \
             happen at measure-zero instants), got {}",
            ss.avg_tokens(p)
        );
    }

    #[test]
    fn expression_enabling_times_are_analyzed_exactly() {
        // The same hand-off ring as above, but with the enabling delay
        // written as a variable expression: the timed build resolves it
        // at arm time (retiring the old ExpressionEnablingTime
        // rejection), so the steady state matches the constant-delay
        // encoding exactly.
        let build = |expr: bool| {
            let mut b = NetBuilder::new("en");
            b.place("p", 1);
            b.place("q", 0);
            let t = b.transition("t").input("p").output("q");
            if expr {
                t.enabling_expr(pnut_core::Expr::parse("d").unwrap()).add();
            } else {
                t.enabling(3).add();
            }
            if expr {
                b.var("d", 3);
            }
            b.transition("r").input("q").output("p").add();
            b.build().unwrap()
        };
        let net = build(true);
        let ss = steady_state(&net, &MarkovOptions::default()).unwrap();
        let constant = steady_state(&build(false), &MarkovOptions::default()).unwrap();
        let t = net.transition_id("t").unwrap();
        assert!(
            (ss.throughput(t) - 1.0 / 3.0).abs() < 1e-9,
            "one firing per 3-tick enabling period, got {}",
            ss.throughput(t)
        );
        assert_eq!(
            ss.transition_throughput, constant.transition_throughput,
            "expression and constant encodings agree bit-for-bit"
        );
        assert_eq!(ss.state_fraction, constant.state_fraction);
    }
}
