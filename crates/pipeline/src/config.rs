//! Parameterization of the processor models.

use std::fmt;

/// Relative frequencies of the three instruction classes of the §2 model
/// (zero / one / two memory operands). The paper uses 70-20-10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Register-only instructions (no memory operand).
    pub zero_operand: f64,
    /// One-memory-operand instructions.
    pub one_operand: f64,
    /// Two-memory-operand instructions.
    pub two_operand: f64,
}

impl Default for InstructionMix {
    fn default() -> Self {
        InstructionMix {
            zero_operand: 0.7,
            one_operand: 0.2,
            two_operand: 0.1,
        }
    }
}

/// One execution-delay class: instructions taking `cycles` with relative
/// frequency `frequency`. The paper's classes are 1-2-5-10-50 cycles with
/// frequencies .5-.3-.1-.05-.05.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecClass {
    /// Execution time in processor cycles.
    pub cycles: u64,
    /// Relative frequency of this class.
    pub frequency: f64,
}

/// Probabilistic cache in front of main memory (§3: "instruction and
/// data caches can be easily modeled probabilistically, assuming some
/// given hit ratio").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Probability that an access hits the cache.
    pub hit_ratio: f64,
    /// Access time on a hit, in cycles.
    pub hit_cycles: u64,
}

/// Full parameterization of the §2 three-stage pipeline model.
///
/// The default value is exactly the paper's configuration, so
/// `ThreeStageConfig::default()` reproduces the Figure 5 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreeStageConfig {
    /// Instruction-buffer capacity in 16-bit words (paper: 6).
    pub ibuf_words: u32,
    /// Words transferred per prefetch bus access (paper: 2).
    pub words_per_prefetch: u32,
    /// Decode time in cycles (paper: 1).
    pub decode_cycles: u64,
    /// Effective-address calculation time per memory operand (paper: 2).
    pub eaddr_cycles_per_operand: u64,
    /// Main-memory access time in cycles (paper: 5).
    pub mem_access_cycles: u64,
    /// Instruction mix (paper: 70-20-10).
    pub instruction_mix: InstructionMix,
    /// Probability an instruction stores a result (paper: 0.2).
    pub store_probability: f64,
    /// Execution-delay classes (paper: five classes).
    pub exec_classes: Vec<ExecClass>,
    /// Optional probabilistic cache in front of memory (§3 extension);
    /// `None` = every access goes to main memory, as in §2.
    pub cache: Option<CacheConfig>,
}

impl Default for ThreeStageConfig {
    fn default() -> Self {
        ThreeStageConfig {
            ibuf_words: 6,
            words_per_prefetch: 2,
            decode_cycles: 1,
            eaddr_cycles_per_operand: 2,
            mem_access_cycles: 5,
            instruction_mix: InstructionMix::default(),
            store_probability: 0.2,
            exec_classes: vec![
                ExecClass {
                    cycles: 1,
                    frequency: 0.5,
                },
                ExecClass {
                    cycles: 2,
                    frequency: 0.3,
                },
                ExecClass {
                    cycles: 5,
                    frequency: 0.1,
                },
                ExecClass {
                    cycles: 10,
                    frequency: 0.05,
                },
                ExecClass {
                    cycles: 50,
                    frequency: 0.05,
                },
            ],
            cache: None,
        }
    }
}

impl ThreeStageConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ModelError`] found.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.ibuf_words == 0 {
            return Err(ModelError::EmptyInstructionBuffer);
        }
        if self.words_per_prefetch == 0 || self.words_per_prefetch > self.ibuf_words {
            return Err(ModelError::BadPrefetchWidth {
                words: self.words_per_prefetch,
                capacity: self.ibuf_words,
            });
        }
        let m = &self.instruction_mix;
        for (name, f) in [
            ("zero_operand", m.zero_operand),
            ("one_operand", m.one_operand),
            ("two_operand", m.two_operand),
        ] {
            if !(f.is_finite() && f >= 0.0) {
                return Err(ModelError::BadFrequency {
                    what: name,
                    value: f,
                });
            }
        }
        if m.zero_operand + m.one_operand + m.two_operand <= 0.0 {
            return Err(ModelError::EmptyMix);
        }
        if !(0.0..=1.0).contains(&self.store_probability) {
            return Err(ModelError::BadProbability {
                what: "store_probability",
                value: self.store_probability,
            });
        }
        if self.exec_classes.is_empty() {
            return Err(ModelError::NoExecClasses);
        }
        for c in &self.exec_classes {
            if !(c.frequency.is_finite() && c.frequency > 0.0) {
                return Err(ModelError::BadFrequency {
                    what: "exec class",
                    value: c.frequency,
                });
            }
        }
        if let Some(cache) = &self.cache {
            if !(0.0..=1.0).contains(&cache.hit_ratio) {
                return Err(ModelError::BadProbability {
                    what: "cache hit_ratio",
                    value: cache.hit_ratio,
                });
            }
        }
        if self.mem_access_cycles == 0 {
            return Err(ModelError::ZeroMemoryLatency);
        }
        Ok(())
    }
}

/// Configuration error for the processor models.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// `ibuf_words` was zero.
    EmptyInstructionBuffer,
    /// Prefetch width zero or larger than the buffer.
    BadPrefetchWidth {
        /// Words per prefetch requested.
        words: u32,
        /// Buffer capacity.
        capacity: u32,
    },
    /// A relative frequency was negative, NaN, or (where required) zero.
    BadFrequency {
        /// Which parameter.
        what: &'static str,
        /// The value supplied.
        value: f64,
    },
    /// All instruction-mix frequencies were zero.
    EmptyMix,
    /// A probability was outside `[0, 1]`.
    BadProbability {
        /// Which parameter.
        what: &'static str,
        /// The value supplied.
        value: f64,
    },
    /// No execution classes supplied.
    NoExecClasses,
    /// Memory access time of zero cycles.
    ZeroMemoryLatency,
    /// Building the net failed (programming error in the generator).
    Net(pnut_core::NetError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyInstructionBuffer => write!(f, "instruction buffer has zero words"),
            ModelError::BadPrefetchWidth { words, capacity } => write!(
                f,
                "prefetch width {words} invalid for buffer of {capacity} words"
            ),
            ModelError::BadFrequency { what, value } => {
                write!(f, "invalid frequency {value} for {what}")
            }
            ModelError::EmptyMix => write!(f, "instruction mix has no positive frequency"),
            ModelError::BadProbability { what, value } => {
                write!(f, "{what} = {value} is not a probability")
            }
            ModelError::NoExecClasses => write!(f, "no execution delay classes"),
            ModelError::ZeroMemoryLatency => write!(f, "memory access time must be at least 1"),
            ModelError::Net(e) => write!(f, "net construction failed: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pnut_core::NetError> for ModelError {
    fn from(e: pnut_core::NetError) -> Self {
        ModelError::Net(e)
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_configuration() {
        let c = ThreeStageConfig::default();
        assert_eq!(c.ibuf_words, 6);
        assert_eq!(c.words_per_prefetch, 2);
        assert_eq!(c.mem_access_cycles, 5);
        assert_eq!(c.exec_classes.len(), 5);
        assert_eq!(c.exec_classes[4].cycles, 50);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = ThreeStageConfig::default();
        c.ibuf_words = 0;
        assert_eq!(c.validate(), Err(ModelError::EmptyInstructionBuffer));

        let mut c = ThreeStageConfig::default();
        c.words_per_prefetch = 7;
        assert!(matches!(
            c.validate(),
            Err(ModelError::BadPrefetchWidth { .. })
        ));

        let mut c = ThreeStageConfig::default();
        c.store_probability = 1.5;
        assert!(matches!(
            c.validate(),
            Err(ModelError::BadProbability { .. })
        ));

        let mut c = ThreeStageConfig::default();
        c.exec_classes.clear();
        assert_eq!(c.validate(), Err(ModelError::NoExecClasses));

        let mut c = ThreeStageConfig::default();
        c.instruction_mix = InstructionMix {
            zero_operand: 0.0,
            one_operand: 0.0,
            two_operand: 0.0,
        };
        assert_eq!(c.validate(), Err(ModelError::EmptyMix));

        let mut c = ThreeStageConfig::default();
        c.mem_access_cycles = 0;
        assert_eq!(c.validate(), Err(ModelError::ZeroMemoryLatency));

        let mut c = ThreeStageConfig::default();
        c.cache = Some(CacheConfig {
            hit_ratio: 2.0,
            hit_cycles: 1,
        });
        assert!(matches!(
            c.validate(),
            Err(ModelError::BadProbability { .. })
        ));
    }
}
