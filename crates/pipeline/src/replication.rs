//! Replicated experiments: independent-seed runs with confidence
//! intervals.
//!
//! "Traditionally, simulation experiments are performed to obtain
//! accurate performance estimates" (§4.2). A single seeded run gives a
//! point estimate; the standard methodology is independent replications:
//! run the same model under `n` seeds and report mean, standard
//! deviation, and a t-distribution confidence interval for each derived
//! metric.

use crate::config::ThreeStageConfig;
use crate::metrics::PipelineMetrics;
use crate::run_experiment;
use std::fmt;

/// Mean, deviation, and 95% confidence half-width of one metric across
/// replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95_half_width: f64,
}

impl Estimate {
    fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let t = t_quantile_975(samples.len().saturating_sub(1));
        Estimate {
            mean,
            std_dev,
            ci95_half_width: t * std_dev / n.sqrt(),
        }
    }

    /// The interval as `(low, high)`.
    pub fn interval(&self) -> (f64, f64) {
        (
            self.mean - self.ci95_half_width,
            self.mean + self.ci95_half_width,
        )
    }

    /// Whether `value` lies within the 95% interval.
    pub fn contains(&self, value: f64) -> bool {
        let (lo, hi) = self.interval();
        (lo..=hi).contains(&value)
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.ci95_half_width)
    }
}

/// Two-sided 97.5% quantile of Student's t for `df` degrees of freedom
/// (table lookup, asymptote 1.96).
fn t_quantile_975(df: usize) -> f64 {
    const TABLE: [f64; 31] = [
        f64::INFINITY,
        12.706,
        4.303,
        3.182,
        2.776,
        2.571,
        2.447,
        2.365,
        2.306,
        2.262,
        2.228,
        2.201,
        2.179,
        2.160,
        2.145,
        2.131,
        2.120,
        2.110,
        2.101,
        2.093,
        2.086,
        2.080,
        2.074,
        2.069,
        2.064,
        2.060,
        2.056,
        2.052,
        2.048,
        2.045,
        2.042,
    ];
    match df {
        0 => f64::INFINITY,
        d if d < TABLE.len() => TABLE[d],
        d if d < 60 => 2.01,
        d if d < 120 => 1.98,
        _ => 1.96,
    }
}

/// Aggregated replication results for the three-stage model.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatedMetrics {
    /// Number of replications.
    pub replications: usize,
    /// Cycles simulated per replication.
    pub cycles: u64,
    /// Instructions per cycle.
    pub instructions_per_cycle: Estimate,
    /// Bus utilization.
    pub bus_utilization: Estimate,
    /// Execution-unit busy fraction.
    pub exec_busy: Estimate,
    /// Decoder idle fraction.
    pub decoder_idle: Estimate,
    /// Per-replication metrics for further analysis.
    pub runs: Vec<PipelineMetrics>,
}

impl fmt::Display for ReplicatedMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "REPLICATED EXPERIMENT ({} runs x {} cycles, 95% CI)",
            self.replications, self.cycles
        )?;
        writeln!(f, "instructions / cycle  {}", self.instructions_per_cycle)?;
        writeln!(f, "bus utilization       {}", self.bus_utilization)?;
        writeln!(f, "execution unit busy   {}", self.exec_busy)?;
        writeln!(f, "decoder idle          {}", self.decoder_idle)?;
        Ok(())
    }
}

/// Run `replications` independent experiments (seeds `0..replications`)
/// of `cycles` each and aggregate.
///
/// # Errors
///
/// Propagates the first model/simulation error, boxed.
///
/// # Example
///
/// ```
/// use pnut_pipeline::{replicate, ThreeStageConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let r = replicate(&ThreeStageConfig::default(), 5, 3_000)?;
/// let (lo, hi) = r.instructions_per_cycle.interval();
/// assert!(lo > 0.0 && hi < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn replicate(
    config: &ThreeStageConfig,
    replications: usize,
    cycles: u64,
) -> Result<ReplicatedMetrics, Box<dyn std::error::Error>> {
    assert!(replications > 0, "need at least one replication");
    let mut runs = Vec::with_capacity(replications);
    for seed in 0..replications as u64 {
        runs.push(run_experiment(config, seed, cycles)?.metrics);
    }
    let collect = |f: &dyn Fn(&PipelineMetrics) -> f64| -> Estimate {
        let samples: Vec<f64> = runs.iter().map(f).collect();
        Estimate::from_samples(&samples)
    };
    Ok(ReplicatedMetrics {
        replications,
        cycles,
        instructions_per_cycle: collect(&|m| m.instructions_per_cycle),
        bus_utilization: collect(&|m| m.bus_utilization),
        exec_busy: collect(&|m| m.exec_busy_total()),
        decoder_idle: collect(&|m| m.decoder_idle),
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_from_known_samples() {
        let e = Estimate::from_samples(&[1.0, 2.0, 3.0]);
        assert!((e.mean - 2.0).abs() < 1e-12);
        assert!((e.std_dev - 1.0).abs() < 1e-12);
        // t(2 df) = 4.303; half-width = 4.303 / sqrt(3).
        assert!((e.ci95_half_width - 4.303 / 3f64.sqrt()).abs() < 1e-9);
        assert!(e.contains(2.0));
        assert!(!e.contains(100.0));
    }

    #[test]
    fn single_sample_has_infinite_interval() {
        let e = Estimate::from_samples(&[5.0]);
        assert_eq!(e.mean, 5.0);
        assert_eq!(e.std_dev, 0.0);
        // 0 * inf = NaN guarded: std_dev 0 with infinite t gives NaN;
        // document the degenerate case by checking it is not finite
        // usable — callers should replicate at least twice.
        assert!(e.ci95_half_width.is_nan() || e.ci95_half_width == 0.0);
    }

    #[test]
    fn replications_bracket_the_long_run() {
        let r = replicate(&ThreeStageConfig::default(), 6, 4_000).unwrap();
        assert_eq!(r.runs.len(), 6);
        // The replication mean should be close to a long single run.
        let long = crate::run_experiment(&ThreeStageConfig::default(), 99, 40_000)
            .unwrap()
            .metrics
            .instructions_per_cycle;
        let (lo, hi) = r.instructions_per_cycle.interval();
        // Allow slack: 6 runs of 4k cycles are noisy; just require the
        // long-run value within a widened interval.
        let w = (hi - lo).max(0.02);
        assert!(
            long > lo - w && long < hi + w,
            "long-run {long} vs CI [{lo}, {hi}]"
        );
        let shown = r.to_string();
        assert!(shown.contains("95% CI"));
    }

    #[test]
    fn t_table_monotone_toward_asymptote() {
        assert!(t_quantile_975(1) > t_quantile_975(5));
        assert!(t_quantile_975(5) > t_quantile_975(30));
        assert!((t_quantile_975(200) - 1.96).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_panics() {
        let _ = replicate(&ThreeStageConfig::default(), 0, 100);
    }
}
