//! The §2 three-stage pipeline model (Figures 1–3).
//!
//! Stage 1 prefetches instructions into the instruction buffer, stage 2
//! decodes / calculates effective addresses / fetches operands, stage 3
//! executes and stores results. The bus is shared by all three stages and
//! modeled by the complementary places `Bus_free` / `Bus_busy` plus the
//! activity-breakdown places `pre_fetching`, `fetching`, `storing`
//! (§4.2). Transitions moving the bus token are all zero-firing-time so
//! `Bus_free + Bus_busy = 1` in every observable state (§4.4).
//!
//! Place and transition names follow the paper's Figure 5 so that
//! reports line up column-for-column.

use crate::config::{CacheConfig, ModelError, ThreeStageConfig};
use pnut_core::{Net, NetBuilder};

/// Names of the execution transitions for a given class count, e.g.
/// `exec_type_1` .. `exec_type_5` for the paper's five classes.
pub fn exec_transition_names(classes: usize) -> Vec<String> {
    (1..=classes).map(|i| format!("exec_type_{i}")).collect()
}

/// Add a memory-access completion for `activity` (e.g. `prefetch`):
/// plain main-memory latency, or a probabilistic hit/miss pair when a
/// cache is configured (§3).
///
/// The hit/miss decision must be made *when the access starts*, not by
/// racing two enabling delays (the shorter deadline would always win
/// and the hit ratio would be ignored). So with a cache the busy place
/// feeds two zero-time routing transitions competing by frequency, each
/// leading to its own completion with the appropriate enabling delay;
/// the bus token stays on `Bus_busy` throughout, preserving the §4.4
/// invariant.
fn add_memory_completion(
    b: &mut NetBuilder,
    name: &str,
    busy_place: &str,
    outputs: &[(&str, u32)],
    mem_cycles: u64,
    cache: Option<&CacheConfig>,
) {
    let complete = |b: &mut NetBuilder, tname: String, from_place: &str, cycles: u64| {
        let mut t = b
            .transition(tname)
            .input("Bus_busy")
            .input(from_place)
            .output("Bus_free")
            .enabling(cycles);
        for &(p, w) in outputs {
            t = t.output_weighted(p, w);
        }
        t.add();
    };
    match cache {
        Some(c) if c.hit_ratio >= 1.0 => {
            complete(b, format!("{name}_hit"), busy_place, c.hit_cycles);
        }
        Some(c) if c.hit_ratio <= 0.0 => {
            complete(b, format!("{name}_miss"), busy_place, mem_cycles);
        }
        Some(c) => {
            let hit_place = format!("{busy_place}_hit");
            let miss_place = format!("{busy_place}_miss");
            b.place(hit_place.as_str(), 0);
            b.place(miss_place.as_str(), 0);
            b.transition(format!("{name}_route_hit"))
                .input(busy_place)
                .output(hit_place.as_str())
                .frequency(c.hit_ratio)
                .add();
            b.transition(format!("{name}_route_miss"))
                .input(busy_place)
                .output(miss_place.as_str())
                .frequency(1.0 - c.hit_ratio)
                .add();
            complete(b, format!("{name}_hit"), &hit_place, c.hit_cycles);
            complete(b, format!("{name}_miss"), &miss_place, mem_cycles);
        }
        None => complete(b, name.to_string(), busy_place, mem_cycles),
    }
}

/// Build the three-stage pipeline net from `config`.
///
/// # Errors
///
/// Returns [`ModelError`] if the configuration is invalid.
///
/// # Example
///
/// ```
/// use pnut_pipeline::{three_stage, ThreeStageConfig};
///
/// # fn main() -> Result<(), pnut_pipeline::ModelError> {
/// let net = three_stage::build(&ThreeStageConfig::default())?;
/// assert!(net.place_id("Bus_busy").is_some());
/// assert!(net.transition_id("Issue").is_some());
/// # Ok(())
/// # }
/// ```
pub fn build(config: &ThreeStageConfig) -> Result<Net, ModelError> {
    config.validate()?;
    let mut b = NetBuilder::new("three_stage_pipeline");

    // --- Shared resources -------------------------------------------------
    b.place("Bus_free", 1);
    b.place("Bus_busy", 0);
    b.place("Decoder_ready", 1);
    b.place("Execution_unit", 1);

    // --- Stage 1: instruction prefetch (Figure 1) --------------------------
    b.place("Empty_I_buffers", config.ibuf_words);
    b.place("Full_I_buffers", 0);
    b.place("pre_fetching", 0);
    b.place("Operand_fetch_pending", 0);
    b.place("Result_store_pending", 0);

    b.transition("Start_prefetch")
        .input("Bus_free")
        .input_weighted("Empty_I_buffers", config.words_per_prefetch)
        .inhibitor("Operand_fetch_pending")
        .inhibitor("Result_store_pending")
        .output("Bus_busy")
        .output("pre_fetching")
        .add();
    add_memory_completion(
        &mut b,
        "End_prefetch",
        "pre_fetching",
        &[("Full_I_buffers", config.words_per_prefetch)],
        config.mem_access_cycles,
        config.cache.as_ref(),
    );

    // --- Stage 2: decode, address calculation, operand fetch (Figure 2) ---
    b.place("Decoded_instruction", 0);
    b.place("T2_calc", 0);
    b.place("T3_calc", 0);
    b.place("T2_wait", 0);
    b.place("T3_wait", 0);
    b.place("fetching", 0);
    b.place("Operands_fetched", 0);
    b.place("ready_to_issue_instruction", 0);

    b.transition("Decode")
        .input("Full_I_buffers")
        .input("Decoder_ready")
        .output("Decoded_instruction")
        .output("Empty_I_buffers")
        .firing(config.decode_cycles)
        .add();

    let mix = &config.instruction_mix;
    if mix.zero_operand > 0.0 {
        b.transition("Type_1")
            .input("Decoded_instruction")
            .output("ready_to_issue_instruction")
            .frequency(mix.zero_operand)
            .add();
    }
    if mix.one_operand > 0.0 {
        b.transition("Type_2")
            .input("Decoded_instruction")
            .output("T2_calc")
            .frequency(mix.one_operand)
            .add();
        b.transition("calc_eaddr_1")
            .input("T2_calc")
            .output("T2_wait")
            .output("Operand_fetch_pending")
            .firing(config.eaddr_cycles_per_operand)
            .add();
        b.transition("finish_2")
            .input("T2_wait")
            .input("Operands_fetched")
            .output("ready_to_issue_instruction")
            .add();
    }
    if mix.two_operand > 0.0 {
        b.transition("Type_3")
            .input("Decoded_instruction")
            .output("T3_calc")
            .frequency(mix.two_operand)
            .add();
        b.transition("calc_eaddr_2")
            .input("T3_calc")
            .output("T3_wait")
            .output_weighted("Operand_fetch_pending", 2)
            .firing(2 * config.eaddr_cycles_per_operand)
            .add();
        b.transition("finish_3")
            .input("T3_wait")
            .input_weighted("Operands_fetched", 2)
            .output("ready_to_issue_instruction")
            .add();
    }
    if mix.one_operand > 0.0 || mix.two_operand > 0.0 {
        b.transition("start_fetch")
            .input("Operand_fetch_pending")
            .input("Bus_free")
            .output("Bus_busy")
            .output("fetching")
            .add();
        add_memory_completion(
            &mut b,
            "end_fetch",
            "fetching",
            &[("Operands_fetched", 1)],
            config.mem_access_cycles,
            config.cache.as_ref(),
        );
    }

    // --- Stage 3: execution and result store (Figure 3) --------------------
    b.place("Issued_instruction", 0);
    b.place("Executed", 0);
    b.place("storing", 0);

    b.transition("Issue")
        .input("ready_to_issue_instruction")
        .input("Execution_unit")
        .output("Issued_instruction")
        .output("Decoder_ready")
        .add();

    for (i, class) in config.exec_classes.iter().enumerate() {
        b.transition(format!("exec_type_{}", i + 1))
            .input("Issued_instruction")
            .output("Executed")
            .firing(class.cycles)
            .frequency(class.frequency)
            .add();
    }

    let p_store = config.store_probability;
    if p_store < 1.0 {
        b.transition("no_store")
            .input("Executed")
            .output("Execution_unit")
            .frequency(1.0 - p_store)
            .add();
    }
    if p_store > 0.0 {
        b.transition("want_store")
            .input("Executed")
            .output("Result_store_pending")
            .frequency(p_store)
            .add();
        b.transition("start_store")
            .input("Result_store_pending")
            .input("Bus_free")
            .output("Bus_busy")
            .output("storing")
            .add();
        add_memory_completion(
            &mut b,
            "end_store",
            "storing",
            &[("Execution_unit", 1)],
            config.mem_access_cycles,
            config.cache.as_ref(),
        );
    }

    b.build().map_err(ModelError::from)
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use pnut_core::analysis;

    #[test]
    fn paper_model_builds_with_expected_structure() {
        let net = build(&ThreeStageConfig::default()).unwrap();
        for p in [
            "Bus_free",
            "Bus_busy",
            "Empty_I_buffers",
            "Full_I_buffers",
            "pre_fetching",
            "fetching",
            "storing",
            "Decoder_ready",
            "Execution_unit",
            "ready_to_issue_instruction",
        ] {
            assert!(net.place_id(p).is_some(), "missing place {p}");
        }
        for t in [
            "Start_prefetch",
            "End_prefetch",
            "Decode",
            "Type_1",
            "Type_2",
            "Type_3",
            "Issue",
            "exec_type_1",
            "exec_type_5",
            "no_store",
            "want_store",
        ] {
            assert!(net.transition_id(t).is_some(), "missing transition {t}");
        }
        assert_eq!(
            net.initial_marking()
                .tokens(net.place_id("Empty_I_buffers").unwrap()),
            6
        );
    }

    #[test]
    fn bus_places_form_a_conserved_atomic_group() {
        let net = build(&ThreeStageConfig::default()).unwrap();
        let group = [
            net.place_id("Bus_free").unwrap(),
            net.place_id("Bus_busy").unwrap(),
        ];
        assert!(
            analysis::conservation_violations(&net, &group).is_empty(),
            "every transition must preserve Bus_free + Bus_busy"
        );
        assert!(
            analysis::nonatomic_group_movers(&net, &group).is_empty(),
            "bus movements must be zero-firing-time (§4.2)"
        );
    }

    #[test]
    fn structural_report_is_clean() {
        let net = build(&ThreeStageConfig::default()).unwrap();
        let r = analysis::structural_report(&net);
        assert!(
            r.is_clean(),
            "the paper model should have no structural anomalies: {r:?}"
        );
    }

    #[test]
    fn cache_splits_memory_transitions() {
        let mut c = ThreeStageConfig::default();
        c.cache = Some(CacheConfig {
            hit_ratio: 0.9,
            hit_cycles: 1,
        });
        let net = build(&c).unwrap();
        assert!(net.transition_id("End_prefetch").is_none());
        assert!(net.transition_id("End_prefetch_hit").is_some());
        assert!(net.transition_id("End_prefetch_miss").is_some());
        assert!(net.transition_id("end_fetch_hit").is_some());
        assert!(net.transition_id("end_store_miss").is_some());
    }

    #[test]
    fn degenerate_cache_ratios_produce_single_transition() {
        let mut c = ThreeStageConfig::default();
        c.cache = Some(CacheConfig {
            hit_ratio: 1.0,
            hit_cycles: 1,
        });
        let net = build(&c).unwrap();
        assert!(net.transition_id("End_prefetch_hit").is_some());
        assert!(net.transition_id("End_prefetch_miss").is_none());

        c.cache = Some(CacheConfig {
            hit_ratio: 0.0,
            hit_cycles: 1,
        });
        let net = build(&c).unwrap();
        assert!(net.transition_id("End_prefetch_hit").is_none());
        assert!(net.transition_id("End_prefetch_miss").is_some());
    }

    #[test]
    fn zero_frequency_classes_are_omitted() {
        let mut c = ThreeStageConfig::default();
        c.instruction_mix.one_operand = 0.0;
        c.instruction_mix.two_operand = 0.0;
        c.store_probability = 0.0;
        let net = build(&c).unwrap();
        assert!(net.transition_id("Type_2").is_none());
        assert!(net.transition_id("Type_3").is_none());
        assert!(net.transition_id("start_fetch").is_none());
        assert!(net.transition_id("want_store").is_none());
        assert!(net.transition_id("no_store").is_some());
    }

    #[test]
    fn exec_names_helper_matches_model() {
        let names = exec_transition_names(5);
        assert_eq!(names[0], "exec_type_1");
        assert_eq!(names[4], "exec_type_5");
        let net = build(&ThreeStageConfig::default()).unwrap();
        for n in names {
            assert!(net.transition_id(&n).is_some());
        }
    }
}
