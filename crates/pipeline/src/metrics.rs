//! Mapping place/transition statistics to processor-level concepts.
//!
//! "In order to properly interpret simulation statistics a careful
//! mapping must be done from the modeling primitives back to some higher
//! level concept" (§4.2). This module encodes the paper's mappings for
//! the three-stage model:
//!
//! * bus utilization = average tokens on `Bus_busy` (valid because the
//!   bus group is complementary and atomic);
//! * bus activity breakdown = averages of `pre_fetching`, `fetching`,
//!   `storing`;
//! * instruction processing rate = throughput of `Issue`;
//! * per-class execution occupancy = average concurrent firings of
//!   `exec_type_k`;
//! * stage idleness = averages of `Decoder_ready` / `Execution_unit`.

use pnut_stat::StatReport;
use std::fmt;

/// Error produced when a report does not contain the three-stage model's
/// places/transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsError {
    /// The missing place or transition name.
    pub missing: String,
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "report does not look like the three-stage model: `{}` missing",
            self.missing
        )
    }
}

impl std::error::Error for MetricsError {}

/// Processor-level metrics of one three-stage-pipeline experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineMetrics {
    /// Fraction of time the bus is busy (`Bus_busy` average).
    pub bus_utilization: f64,
    /// Fraction of time the bus is prefetching instructions.
    pub bus_prefetch: f64,
    /// Fraction of time the bus is fetching operands.
    pub bus_operand_fetch: f64,
    /// Fraction of time the bus is storing results.
    pub bus_store: f64,
    /// Instructions issued per processor cycle (`Issue` throughput).
    pub instructions_per_cycle: f64,
    /// Fraction of time spent executing each delay class
    /// (`exec_type_k` average concurrent firings, §4.2).
    pub exec_busy: Vec<f64>,
    /// Fraction of time the execution unit is *idle*
    /// (`Execution_unit` token present).
    pub exec_unit_idle: f64,
    /// Fraction of time the decoder is *idle* (`Decoder_ready` token
    /// present).
    pub decoder_idle: f64,
    /// Average number of empty instruction-buffer slots.
    pub avg_empty_ibuf: f64,
    /// Average number of full instruction-buffer slots.
    pub avg_full_ibuf: f64,
    /// Fraction of time an instruction is ready to issue.
    pub ready_to_issue: f64,
    /// Instructions decoded per type `(Type_1, Type_2, Type_3)` start
    /// counts; zero for types absent from the model.
    pub type_counts: (u64, u64, u64),
}

impl PipelineMetrics {
    /// Extract metrics from a `stat` report of the three-stage model.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError`] naming the first place/transition that
    /// the report lacks.
    pub fn from_report(report: &StatReport) -> Result<Self, MetricsError> {
        let place_avg = |name: &str| -> Result<f64, MetricsError> {
            report
                .place(name)
                .map(|p| p.avg_tokens)
                .ok_or_else(|| MetricsError {
                    missing: name.to_string(),
                })
        };
        let trans_starts = |name: &str| report.transition(name).map(|t| t.starts).unwrap_or(0);

        let issue = report.transition("Issue").ok_or_else(|| MetricsError {
            missing: "Issue".to_string(),
        })?;

        let mut exec_busy = Vec::new();
        let mut k = 1;
        while let Some(t) = report.transition(&format!("exec_type_{k}")) {
            exec_busy.push(t.avg_concurrent);
            k += 1;
        }
        if exec_busy.is_empty() {
            return Err(MetricsError {
                missing: "exec_type_1".to_string(),
            });
        }

        Ok(PipelineMetrics {
            bus_utilization: place_avg("Bus_busy")?,
            bus_prefetch: place_avg("pre_fetching")?,
            bus_operand_fetch: place_avg("fetching")?,
            bus_store: place_avg("storing")?,
            instructions_per_cycle: issue.throughput,
            exec_busy,
            exec_unit_idle: place_avg("Execution_unit")?,
            decoder_idle: place_avg("Decoder_ready")?,
            avg_empty_ibuf: place_avg("Empty_I_buffers")?,
            avg_full_ibuf: place_avg("Full_I_buffers")?,
            ready_to_issue: place_avg("ready_to_issue_instruction")?,
            type_counts: (
                trans_starts("Type_1"),
                trans_starts("Type_2"),
                trans_starts("Type_3"),
            ),
        })
    }

    /// Total fraction of time the execution unit is busy executing.
    pub fn exec_busy_total(&self) -> f64 {
        self.exec_busy.iter().sum()
    }
}

impl fmt::Display for PipelineMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PROCESSOR METRICS")?;
        writeln!(
            f,
            "instructions / cycle      {:.4}",
            self.instructions_per_cycle
        )?;
        writeln!(f, "bus utilization           {:.4}", self.bus_utilization)?;
        writeln!(f, "  prefetching             {:.4}", self.bus_prefetch)?;
        writeln!(f, "  operand fetching        {:.4}", self.bus_operand_fetch)?;
        writeln!(f, "  storing results         {:.4}", self.bus_store)?;
        writeln!(f, "execution unit busy       {:.4}", self.exec_busy_total())?;
        for (i, b) in self.exec_busy.iter().enumerate() {
            writeln!(f, "  class {}                 {:.4}", i + 1, b)?;
        }
        writeln!(f, "execution unit idle       {:.4}", self.exec_unit_idle)?;
        writeln!(f, "decoder idle              {:.4}", self.decoder_idle)?;
        writeln!(f, "avg empty I-buffer slots  {:.4}", self.avg_empty_ibuf)?;
        writeln!(f, "avg full I-buffer slots   {:.4}", self.avg_full_ibuf)?;
        writeln!(f, "ready-to-issue fraction   {:.4}", self.ready_to_issue)?;
        let (t1, t2, t3) = self.type_counts;
        writeln!(f, "type counts (0/1/2 ops)   {t1}/{t2}/{t3}")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_experiment, ThreeStageConfig};

    #[test]
    fn metrics_extracted_from_real_run() {
        let o = run_experiment(&ThreeStageConfig::default(), 1, 5000).unwrap();
        let m = &o.metrics;
        // Breakdown must not exceed the total.
        assert!(m.bus_prefetch + m.bus_operand_fetch + m.bus_store <= m.bus_utilization + 1e-9);
        assert!(m.bus_utilization <= 1.0);
        assert!(m.exec_unit_idle <= 1.0);
        assert!(m.decoder_idle <= 1.0);
        assert!(m.avg_empty_ibuf <= 6.0);
        assert!(m.exec_busy.len() == 5);
        let (t1, t2, t3) = m.type_counts;
        assert!(t1 > t2 && t2 > t3, "mix 70/20/10 must order type counts");
        let s = m.to_string();
        assert!(s.contains("bus utilization"));
    }

    #[test]
    fn missing_names_reported() {
        let report = pnut_stat::StatReport {
            run_number: 1,
            initial_clock: pnut_core::Time::ZERO,
            end_time: pnut_core::Time::ZERO,
            length: pnut_core::Time::ZERO,
            events_started: 0,
            events_finished: 0,
            places: vec![],
            transitions: vec![],
        };
        let e = PipelineMetrics::from_report(&report).unwrap_err();
        assert_eq!(e.missing, "Issue");
    }
}
