//! A non-pipelined baseline processor.
//!
//! The paper's motivation is that pipelining "speeds up instruction
//! fetching, decoding and execution" in ways that are hard to predict as
//! memory speed and clock rate vary. This module builds a *sequential*
//! processor from the same [`ThreeStageConfig`] workload parameters: one
//! instruction at a time flows through fetch → decode → address
//! calculation → operand fetch → execute → store, with no overlap. The
//! ratio of pipelined to sequential instruction rate is the pipeline
//! speedup the benchmarks sweep.

use crate::config::{ModelError, ThreeStageConfig};
use pnut_core::{Net, NetBuilder};
use pnut_stat::StatReport;

/// Build the sequential baseline net from the same config as the
/// pipelined model. The instruction buffer and prefetcher are absent:
/// each instruction is fetched on demand (one word, one bus access).
///
/// # Errors
///
/// Returns [`ModelError`] if the configuration is invalid.
///
/// # Example
///
/// ```
/// use pnut_pipeline::{sequential, ThreeStageConfig};
///
/// # fn main() -> Result<(), pnut_pipeline::ModelError> {
/// let net = sequential::build(&ThreeStageConfig::default())?;
/// assert!(net.transition_id("retire").is_some());
/// # Ok(())
/// # }
/// ```
pub fn build(config: &ThreeStageConfig) -> Result<Net, ModelError> {
    config.validate()?;
    let mut b = NetBuilder::new("sequential_processor");

    b.place("CPU", 1);
    b.place("Bus_free", 1);
    b.place("Bus_busy", 0);
    b.places_empty([
        "ifetching",
        "Fetched",
        "DecodedS",
        "S2_calc",
        "S3_calc",
        "S2_wait",
        "S3_wait",
        "S_fetch_pending",
        "s_fetching",
        "S_fetched",
        "ReadyS",
        "ExecutedS",
        "S_store_pending",
        "s_storing",
        "Retired",
    ]);

    // Instruction fetch: one word per instruction, on demand.
    b.transition("start_ifetch")
        .input("CPU")
        .input("Bus_free")
        .output("Bus_busy")
        .output("ifetching")
        .add();
    b.transition("end_ifetch")
        .input("Bus_busy")
        .input("ifetching")
        .output("Bus_free")
        .output("Fetched")
        .enabling(config.mem_access_cycles)
        .add();

    b.transition("decode")
        .input("Fetched")
        .output("DecodedS")
        .firing(config.decode_cycles)
        .add();

    let mix = &config.instruction_mix;
    if mix.zero_operand > 0.0 {
        b.transition("TypeS_1")
            .input("DecodedS")
            .output("ReadyS")
            .frequency(mix.zero_operand)
            .add();
    }
    if mix.one_operand > 0.0 {
        b.transition("TypeS_2")
            .input("DecodedS")
            .output("S2_calc")
            .frequency(mix.one_operand)
            .add();
        b.transition("calc_eaddr_s1")
            .input("S2_calc")
            .output("S2_wait")
            .output("S_fetch_pending")
            .firing(config.eaddr_cycles_per_operand)
            .add();
        b.transition("finish_s2")
            .input("S2_wait")
            .input("S_fetched")
            .output("ReadyS")
            .add();
    }
    if mix.two_operand > 0.0 {
        b.transition("TypeS_3")
            .input("DecodedS")
            .output("S3_calc")
            .frequency(mix.two_operand)
            .add();
        b.transition("calc_eaddr_s2")
            .input("S3_calc")
            .output("S3_wait")
            .output_weighted("S_fetch_pending", 2)
            .firing(2 * config.eaddr_cycles_per_operand)
            .add();
        b.transition("finish_s3")
            .input("S3_wait")
            .input_weighted("S_fetched", 2)
            .output("ReadyS")
            .add();
    }
    if mix.one_operand > 0.0 || mix.two_operand > 0.0 {
        b.transition("start_ofetch")
            .input("S_fetch_pending")
            .input("Bus_free")
            .output("Bus_busy")
            .output("s_fetching")
            .add();
        b.transition("end_ofetch")
            .input("Bus_busy")
            .input("s_fetching")
            .output("Bus_free")
            .output("S_fetched")
            .enabling(config.mem_access_cycles)
            .add();
    }

    for (i, class) in config.exec_classes.iter().enumerate() {
        b.transition(format!("exec_s_{}", i + 1))
            .input("ReadyS")
            .output("ExecutedS")
            .firing(class.cycles)
            .frequency(class.frequency)
            .add();
    }

    let p_store = config.store_probability;
    if p_store < 1.0 {
        b.transition("no_store_s")
            .input("ExecutedS")
            .output("Retired")
            .frequency(1.0 - p_store)
            .add();
    }
    if p_store > 0.0 {
        b.transition("want_store_s")
            .input("ExecutedS")
            .output("S_store_pending")
            .frequency(p_store)
            .add();
        b.transition("start_store_s")
            .input("S_store_pending")
            .input("Bus_free")
            .output("Bus_busy")
            .output("s_storing")
            .add();
        b.transition("end_store_s")
            .input("Bus_busy")
            .input("s_storing")
            .output("Bus_free")
            .output("Retired")
            .enabling(config.mem_access_cycles)
            .add();
    }

    b.transition("retire").input("Retired").output("CPU").add();

    b.build().map_err(ModelError::from)
}

/// Instructions completed per cycle for a sequential-baseline report:
/// the throughput of `retire`.
pub fn instructions_per_cycle(report: &StatReport) -> Option<f64> {
    report.transition("retire").map(|t| t.throughput)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::Time;

    #[test]
    fn sequential_runs_and_retires_instructions() {
        let net = build(&ThreeStageConfig::default()).unwrap();
        let trace = pnut_sim::simulate(&net, 11, Time::from_ticks(5000)).unwrap();
        let report = pnut_stat::analyze(&trace);
        let ipc = instructions_per_cycle(&report).unwrap();
        assert!(ipc > 0.0 && ipc < 1.0, "ipc {ipc}");
    }

    #[test]
    fn sequential_is_slower_than_pipelined() {
        let config = ThreeStageConfig::default();
        let seq = build(&config).unwrap();
        let seq_trace = pnut_sim::simulate(&seq, 3, Time::from_ticks(10_000)).unwrap();
        let seq_ipc = instructions_per_cycle(&pnut_stat::analyze(&seq_trace)).unwrap();

        let pipe = crate::three_stage::build(&config).unwrap();
        let pipe_trace = pnut_sim::simulate(&pipe, 3, Time::from_ticks(10_000)).unwrap();
        let pipe_report = pnut_stat::analyze(&pipe_trace);
        let pipe_ipc = pipe_report.transition("Issue").unwrap().throughput;

        assert!(
            pipe_ipc > seq_ipc,
            "pipelining must speed things up: pipelined {pipe_ipc} vs sequential {seq_ipc}"
        );
    }

    #[test]
    fn at_most_one_instruction_in_flight() {
        // The CPU token serializes everything: no place other than the
        // bus pair may ever hold more than ... instructions; check the
        // simple invariant that `CPU + in-progress stages <= 1` by
        // verifying `retire` never has 2 concurrent firings and ReadyS
        // never exceeds 1 token.
        let net = build(&ThreeStageConfig::default()).unwrap();
        let trace = pnut_sim::simulate(&net, 9, Time::from_ticks(3000)).unwrap();
        let report = pnut_stat::analyze(&trace);
        assert!(report.place("ReadyS").unwrap().max_tokens <= 1);
        assert!(report.place("Fetched").unwrap().max_tokens <= 1);
    }
}
