#![forbid(unsafe_code)]

//! # pnut-pipeline — the paper's pipelined-processor models
//!
//! Petri-net models of the microprocessors from Razouk's paper:
//!
//! * [`three_stage`] — the §2 model (Figures 1–3): a 3-stage pipeline
//!   with prefetch into a 6-word instruction buffer (two words per bus
//!   access), decode / effective-address calculation / operand fetch,
//!   and execution with five delay classes and probabilistic result
//!   stores. Fully parameterized through [`ThreeStageConfig`].
//! * [`interpreted`] — the §3 table-driven model (Figure 4): predicates
//!   and actions select an instruction type with `irand`, look up its
//!   operand count / length / execution delay in tables, and loop the
//!   operand-fetch subnet — net complexity stays constant as the
//!   instruction set grows.
//! * [`sequential`] — a non-pipelined baseline processor built from the
//!   same workload parameters, for speedup comparisons (the paper's
//!   motivation: understanding what pipelining buys under different
//!   memory speeds).
//! * [`metrics`] — the §4.2 mapping from place/transition statistics to
//!   processor-level concepts: bus utilization and its
//!   prefetch/fetch/store breakdown, instruction processing rate,
//!   stage utilizations.
//!
//! # Example: reproduce the Figure 5 experiment
//!
//! ```
//! use pnut_pipeline::{run_experiment, ThreeStageConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ThreeStageConfig::default(); // the paper's §2 parameters
//! let outcome = run_experiment(&config, 1, 10_000)?;
//! let m = &outcome.metrics;
//! assert!(m.bus_utilization > 0.3 && m.bus_utilization < 1.0);
//! assert!(m.instructions_per_cycle > 0.05);
//! # Ok(())
//! # }
//! ```

mod config;
pub mod interpreted;
pub mod metrics;
pub mod replication;
pub mod sequential;
pub mod three_stage;

pub use config::{CacheConfig, ExecClass, InstructionMix, ModelError, ThreeStageConfig};
pub use metrics::{MetricsError, PipelineMetrics};
pub use replication::{replicate, Estimate, ReplicatedMetrics};

use pnut_core::Time;
use pnut_stat::StatReport;

/// Everything produced by one simulation experiment on the three-stage
/// model.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// The raw place/transition statistics (Figure 5).
    pub report: StatReport,
    /// The processor-level interpretation (§4.2).
    pub metrics: PipelineMetrics,
    /// Events started/finished, horizon (run block of Figure 5).
    pub summary: pnut_sim::RunSummary,
}

/// Build the §2 model from `config`, simulate `cycles` processor cycles
/// with `seed`, and return statistics plus processor metrics.
///
/// # Errors
///
/// Returns the model-validation, simulation, or metric-extraction error,
/// boxed.
pub fn run_experiment(
    config: &ThreeStageConfig,
    seed: u64,
    cycles: u64,
) -> Result<ExperimentOutcome, Box<dyn std::error::Error>> {
    let net = three_stage::build(config)?;
    let mut sim = pnut_sim::Simulator::new(&net, seed)?;
    let mut collector = pnut_stat::StatCollector::new();
    let summary = sim.run(Time::from_ticks(cycles), &mut collector)?;
    let report = collector
        .into_report()
        .expect("collector saw a complete run");
    let metrics = PipelineMetrics::from_report(&report)?;
    Ok(ExperimentOutcome {
        report,
        metrics,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_experiment_is_reproducible() {
        let a = run_experiment(&ThreeStageConfig::default(), 7, 2000).unwrap();
        let b = run_experiment(&ThreeStageConfig::default(), 7, 2000).unwrap();
        assert_eq!(a.report, b.report);
    }
}
