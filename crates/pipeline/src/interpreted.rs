//! The §3 table-driven "interpreted" model (Figure 4).
//!
//! Modern instruction sets have many instruction types, variable
//! lengths, and dozens of addressing modes; one subnet per type would
//! explode the net. The paper's answer: one `Decode` transition whose
//! *action* randomly selects the instruction type and looks up its
//! properties in tables, while small predicate-guarded loops consume the
//! instruction's extra words and fetch its operands one at a time. "The
//! Petri net itself would be used to model what Petri nets model best:
//! the contention for the bus and the synchronization between different
//! portions of the pipeline."
//!
//! The decode action is exactly the paper's:
//!
//! ```text
//! ty = irand(1, max_type);
//! ops_needed = operands[ty];
//! ```
//!
//! and the operand loop carries the paper's predicates
//! (`ops_needed > 0` on `fetch_operand`, `ops_needed == 0` on
//! `operand_fetching_done`) and the decrement action on `end_fetch`.

use crate::config::ModelError;
use pnut_core::{Expr, Net, NetBuilder};

/// One instruction type for the interpreted model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstructionType {
    /// Memory operands to fetch.
    pub operands: u32,
    /// Total instruction length in buffer words (≥ 1).
    pub length_words: u32,
    /// Execution time in cycles.
    pub exec_cycles: u64,
    /// Whether the instruction stores a result to memory.
    pub stores_result: bool,
    /// Whether the instruction is a taken branch: issuing it flushes the
    /// prefetched instruction buffer (the words belong to the wrong
    /// path) and stalls prefetching until the flush completes.
    pub is_branch: bool,
}

impl InstructionType {
    /// A non-branching, non-storing instruction (convenience).
    pub fn simple(operands: u32, length_words: u32, exec_cycles: u64) -> Self {
        InstructionType {
            operands,
            length_words,
            exec_cycles,
            stores_result: false,
            is_branch: false,
        }
    }
}

/// Configuration of the interpreted model.
///
/// `irand` selects types uniformly; to model a non-uniform distribution,
/// repeat an entry (the table is indexed by type number, so duplicates
/// cost one table slot each — the paper's "according to some
/// distribution").
#[derive(Debug, Clone, PartialEq)]
pub struct InterpretedConfig {
    /// The instruction set, indexed by type number 1..=N.
    pub instruction_types: Vec<InstructionType>,
    /// Instruction-buffer capacity in words.
    pub ibuf_words: u32,
    /// Words per prefetch bus access.
    pub words_per_prefetch: u32,
    /// Decode time in cycles.
    pub decode_cycles: u64,
    /// Main-memory access time in cycles.
    pub mem_access_cycles: u64,
    /// Build the net for exhaustive analysis instead of simulation:
    ///
    /// * instruction types are picked round-robin
    ///   (`ty = ty % max_type + 1`) instead of with `irand`, so analyses
    ///   that reject randomness (reachability, CTL) accept the net;
    /// * the next instruction cannot issue until the previous branch
    ///   decision has resolved (`Issue` is inhibited by `Post_issue`).
    ///   Timed behavior is unchanged — decisions fire immediately — but
    ///   without the inhibitor the untimed interleaving semantics lets
    ///   `Post_issue` grow without bound, making the state space
    ///   infinite.
    pub for_analysis: bool,
}

impl Default for InterpretedConfig {
    /// A small CISC-flavoured instruction set: register ops, one- and
    /// two-operand memory ops of varying length, and a long stored
    /// multiply — enough to exercise every table and loop.
    fn default() -> Self {
        InterpretedConfig {
            instruction_types: vec![
                InstructionType {
                    operands: 0,
                    length_words: 1,
                    exec_cycles: 1,
                    stores_result: false,
                    is_branch: false,
                },
                InstructionType {
                    operands: 0,
                    length_words: 1,
                    exec_cycles: 2,
                    stores_result: false,
                    is_branch: false,
                },
                InstructionType {
                    operands: 1,
                    length_words: 2,
                    exec_cycles: 2,
                    stores_result: false,
                    is_branch: false,
                },
                InstructionType {
                    operands: 1,
                    length_words: 2,
                    exec_cycles: 5,
                    stores_result: true,
                    is_branch: false,
                },
                InstructionType {
                    operands: 2,
                    length_words: 3,
                    exec_cycles: 10,
                    stores_result: true,
                    is_branch: true,
                },
            ],
            ibuf_words: 6,
            words_per_prefetch: 2,
            decode_cycles: 1,
            mem_access_cycles: 5,
            for_analysis: false,
        }
    }
}

impl InterpretedConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] for an empty instruction set, zero-length
    /// instructions, an empty buffer, or invalid prefetch width.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.instruction_types.is_empty() {
            return Err(ModelError::NoExecClasses);
        }
        if self.ibuf_words == 0 {
            return Err(ModelError::EmptyInstructionBuffer);
        }
        if self.words_per_prefetch == 0 || self.words_per_prefetch > self.ibuf_words {
            return Err(ModelError::BadPrefetchWidth {
                words: self.words_per_prefetch,
                capacity: self.ibuf_words,
            });
        }
        if self.mem_access_cycles == 0 {
            return Err(ModelError::ZeroMemoryLatency);
        }
        for t in &self.instruction_types {
            if t.length_words == 0 {
                return Err(ModelError::BadPrefetchWidth {
                    words: 0,
                    capacity: self.ibuf_words,
                });
            }
            if t.length_words > self.ibuf_words {
                return Err(ModelError::BadPrefetchWidth {
                    words: t.length_words,
                    capacity: self.ibuf_words,
                });
            }
        }
        Ok(())
    }
}

/// Build the interpreted net from `config`.
///
/// # Errors
///
/// Returns [`ModelError`] if the configuration is invalid.
///
/// # Example
///
/// ```
/// use pnut_pipeline::interpreted::{build, InterpretedConfig};
///
/// # fn main() -> Result<(), pnut_pipeline::ModelError> {
/// let net = build(&InterpretedConfig::default())?;
/// assert!(net.transition_id("fetch_operand").is_some());
/// assert!(net.transition_id("operand_fetching_done").is_some());
/// assert!(net.uses_random(), "decode uses irand to pick the type");
/// # Ok(())
/// # }
/// ```
pub fn build(config: &InterpretedConfig) -> Result<Net, ModelError> {
    config.validate()?;
    let mut b = NetBuilder::new("interpreted_pipeline");
    let max_type = config.instruction_types.len() as i64;

    // Tables indexed by type number; slot 0 is unused padding so the
    // paper's 1-based `irand(1, max_type)` indexes directly.
    let pad = |f: &dyn Fn(&InstructionType) -> i64| -> Vec<i64> {
        std::iter::once(0)
            .chain(config.instruction_types.iter().map(f))
            .collect()
    };
    b.table("operands", pad(&|t| i64::from(t.operands)));
    b.table("length", pad(&|t| i64::from(t.length_words)));
    b.table("exec", pad(&|t| t.exec_cycles as i64));
    b.table("stores", pad(&|t| i64::from(t.stores_result)));
    b.table("branches", pad(&|t| i64::from(t.is_branch)));
    b.var("max_type", max_type);
    b.var("ty", 0);
    b.var("ops_needed", 0);
    b.var("extra_words", 0);
    b.var("will_store", 0);
    b.var("exec_ty", 0);
    b.var("exec_store", 0);
    b.var("is_br", 0);
    b.var("exec_branch", 0);

    // Shared resources.
    b.place("Bus_free", 1);
    b.place("Bus_busy", 0);
    b.place("Decoder_ready", 1);
    b.place("Execution_unit", 1);

    // Stage 1: prefetch (same shape as the §2 model, Figure 1).
    b.place("Empty_I_buffers", config.ibuf_words);
    b.place("Full_I_buffers", 0);
    b.place("pre_fetching", 0);
    b.transition("Start_prefetch")
        .input("Bus_free")
        .input_weighted("Empty_I_buffers", config.words_per_prefetch)
        .inhibitor("Op_loop")
        .inhibitor("Store_pending")
        .inhibitor("Flushing")
        .output("Bus_busy")
        .output("pre_fetching")
        .add();
    b.transition("End_prefetch")
        .input("Bus_busy")
        .input("pre_fetching")
        .output("Bus_free")
        .output_weighted("Full_I_buffers", config.words_per_prefetch)
        .enabling(config.mem_access_cycles)
        .add();

    // Stage 2: interpreted decode (Figure 4).
    b.place("Word_loop", 0);
    b.place("Op_loop", 0);
    b.place("fetching", 0);
    b.place("ready_to_issue_instruction", 0);

    let dispatch = if config.for_analysis {
        "ty = ty % max_type + 1; "
    } else {
        "ty = irand(1, max_type); "
    };
    b.transition("Decode")
        .input("Full_I_buffers")
        .input("Decoder_ready")
        .output("Word_loop")
        .output("Empty_I_buffers")
        .firing(config.decode_cycles)
        .action_str(&format!(
            "{dispatch}\
             ops_needed = operands[ty]; \
             extra_words = length[ty] - 1; \
             will_store = stores[ty]; \
             is_br = branches[ty];",
        ))?
        .add();

    // Consume the instruction's remaining words from the buffer.
    b.transition("consume_word")
        .input("Word_loop")
        .input("Full_I_buffers")
        .output("Word_loop")
        .output("Empty_I_buffers")
        .predicate_str("extra_words > 0")?
        .action_str("extra_words = extra_words - 1;")?
        .add();
    b.transition("words_done")
        .input("Word_loop")
        .output("Op_loop")
        .predicate_str("extra_words == 0")?
        .add();

    // The paper's operand-fetch loop, verbatim predicates and action.
    b.transition("fetch_operand")
        .input("Op_loop")
        .input("Bus_free")
        .output("Bus_busy")
        .output("fetching")
        .predicate_str("ops_needed > 0")?
        .add();
    b.transition("end_fetch")
        .input("Bus_busy")
        .input("fetching")
        .output("Bus_free")
        .output("Op_loop")
        .enabling(config.mem_access_cycles)
        .action_str("ops_needed = ops_needed - 1;")?
        .add();
    b.transition("operand_fetching_done")
        .input("Op_loop")
        .output("ready_to_issue_instruction")
        .predicate_str("ops_needed == 0")?
        .add();

    // Stage 3: issue copies the per-instruction variables so the decoder
    // can start on the next instruction without clobbering them.
    b.place("Issued_instruction", 0);
    b.place("Executed", 0);
    b.place("Store_pending", 0);
    b.place("storing", 0);

    b.place("Post_issue", 0);
    b.place("Flushing", 0);
    let mut issue = b
        .transition("Issue")
        .input("ready_to_issue_instruction")
        .input("Execution_unit")
        .output("Issued_instruction")
        .output("Post_issue")
        .output("Decoder_ready")
        .action_str("exec_ty = ty; exec_store = will_store; exec_branch = is_br;")?;
    if config.for_analysis {
        issue = issue.inhibitor("Post_issue");
    }
    issue.add();
    // Branch handling: a taken branch invalidates everything prefetched
    // (wrong path). `flush_word` drains the buffer word by word and
    // `flush_done` ends the episode once it is empty; prefetching is
    // inhibited throughout.
    b.transition("branch_flush")
        .input("Post_issue")
        .output("Flushing")
        .predicate_str("exec_branch == 1")?
        .add();
    b.transition("no_branch")
        .input("Post_issue")
        .predicate_str("exec_branch == 0")?
        .add();
    b.transition("flush_word")
        .input("Flushing")
        .input("Full_I_buffers")
        .output("Flushing")
        .output("Empty_I_buffers")
        .add();
    b.transition("flush_done")
        .input("Flushing")
        .inhibitor("Full_I_buffers")
        .add();
    b.transition("execute")
        .input("Issued_instruction")
        .output("Executed")
        .firing_expr(Expr::parse("exec[exec_ty]").expect("table lookup parses"))
        .add();
    b.transition("no_store_done")
        .input("Executed")
        .output("Execution_unit")
        .predicate_str("exec_store == 0")?
        .add();
    b.transition("decide_store")
        .input("Executed")
        .output("Store_pending")
        .predicate_str("exec_store == 1")?
        .add();
    b.transition("start_store")
        .input("Store_pending")
        .input("Bus_free")
        .output("Bus_busy")
        .output("storing")
        .add();
    b.transition("end_store")
        .input("Bus_busy")
        .input("storing")
        .output("Bus_free")
        .output("Execution_unit")
        .enabling(config.mem_access_cycles)
        .add();

    b.build().map_err(ModelError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::Time;

    #[test]
    fn analysis_variant_is_deterministic_and_still_flows() {
        let config = InterpretedConfig {
            for_analysis: true,
            ..InterpretedConfig::default()
        };
        let net = build(&config).unwrap();
        assert!(!net.uses_random(), "round-robin dispatch has no irand");
        // The round-robin stream still executes instructions.
        let trace = pnut_sim::simulate(&net, 5, Time::from_ticks(3000)).unwrap();
        let report = pnut_stat::analyze(&trace);
        assert!(report.transition("Issue").unwrap().ends > 10);
    }

    #[test]
    fn default_builds_and_runs() {
        let net = build(&InterpretedConfig::default()).unwrap();
        let trace = pnut_sim::simulate(&net, 5, Time::from_ticks(3000)).unwrap();
        let report = pnut_stat::analyze(&trace);
        let issued = report.transition("Issue").unwrap();
        assert!(issued.ends > 10, "instructions must flow: {}", issued.ends);
        // Bus invariant holds in every state.
        let bus_free = trace.header().place_id("Bus_free").unwrap();
        let bus_busy = trace.header().place_id("Bus_busy").unwrap();
        for s in trace.states() {
            assert_eq!(
                s.marking.tokens(bus_free) + s.marking.tokens(bus_busy),
                1,
                "bus invariant violated at state {}",
                s.index
            );
        }
    }

    #[test]
    fn register_only_isa_never_touches_operand_bus() {
        let config = InterpretedConfig {
            instruction_types: vec![InstructionType::simple(0, 1, 2)],
            ..InterpretedConfig::default()
        };
        let net = build(&config).unwrap();
        let trace = pnut_sim::simulate(&net, 2, Time::from_ticks(1000)).unwrap();
        let report = pnut_stat::analyze(&trace);
        assert_eq!(report.transition("fetch_operand").unwrap().starts, 0);
        assert_eq!(report.transition("start_store").unwrap().starts, 0);
        assert!(report.transition("Issue").unwrap().ends > 50);
    }

    #[test]
    fn multi_word_instructions_consume_extra_words() {
        let config = InterpretedConfig {
            instruction_types: vec![InstructionType::simple(0, 3, 1)],
            ..InterpretedConfig::default()
        };
        let net = build(&config).unwrap();
        let trace = pnut_sim::simulate(&net, 2, Time::from_ticks(2000)).unwrap();
        let report = pnut_stat::analyze(&trace);
        let decodes = report.transition("Decode").unwrap().ends;
        let consumed = report.transition("consume_word").unwrap().ends;
        assert!(decodes > 0);
        // Every decoded instruction consumes exactly 2 extra words; the
        // final instruction may still be mid-consumption at the horizon.
        assert!(
            consumed == 2 * decodes || consumed + 1 == 2 * decodes || consumed + 2 == 2 * decodes,
            "consumed {consumed} vs decodes {decodes}"
        );
    }

    #[test]
    fn two_operand_instructions_fetch_twice() {
        let config = InterpretedConfig {
            instruction_types: vec![InstructionType::simple(2, 1, 1)],
            ..InterpretedConfig::default()
        };
        let net = build(&config).unwrap();
        let trace = pnut_sim::simulate(&net, 2, Time::from_ticks(2000)).unwrap();
        let report = pnut_stat::analyze(&trace);
        let issues = report.transition("Issue").unwrap().ends;
        let fetches = report.transition("end_fetch").unwrap().ends;
        assert!(issues > 0);
        assert!(
            fetches >= 2 * issues,
            "each issued instruction needed 2 operand fetches: {fetches} vs {issues}"
        );
    }

    #[test]
    fn store_instructions_use_the_bus() {
        let config = InterpretedConfig {
            instruction_types: vec![InstructionType {
                operands: 0,
                length_words: 1,
                exec_cycles: 1,
                stores_result: true,
                is_branch: false,
            }],
            ..InterpretedConfig::default()
        };
        let net = build(&config).unwrap();
        let trace = pnut_sim::simulate(&net, 2, Time::from_ticks(1000)).unwrap();
        let report = pnut_stat::analyze(&trace);
        assert!(report.transition("end_store").unwrap().ends > 0);
        assert_eq!(report.transition("no_store_done").unwrap().starts, 0);
    }

    #[test]
    fn branches_flush_the_buffer() {
        let config = InterpretedConfig {
            instruction_types: vec![InstructionType {
                operands: 0,
                length_words: 1,
                exec_cycles: 1,
                stores_result: false,
                is_branch: true,
            }],
            ..InterpretedConfig::default()
        };
        let net = build(&config).unwrap();
        let trace = pnut_sim::simulate(&net, 4, Time::from_ticks(2000)).unwrap();
        let report = pnut_stat::analyze(&trace);
        let issues = report.transition("Issue").unwrap().ends;
        let flush_episodes = report.transition("flush_done").unwrap().ends;
        assert!(issues > 0);
        assert!(
            flush_episodes >= issues - 1,
            "every branch issue flushes: {flush_episodes} vs {issues}"
        );
        assert_eq!(report.transition("no_branch").unwrap().starts, 0);
    }

    #[test]
    fn branches_cost_throughput() {
        let no_branch = InterpretedConfig {
            instruction_types: vec![InstructionType::simple(0, 1, 1); 4],
            ..InterpretedConfig::default()
        };
        let mut all_branch = no_branch.clone();
        for t in &mut all_branch.instruction_types {
            t.is_branch = true;
        }
        let ipc = |c: &InterpretedConfig| {
            let net = build(c).unwrap();
            let trace = pnut_sim::simulate(&net, 9, Time::from_ticks(5000)).unwrap();
            pnut_stat::analyze(&trace)
                .transition("Issue")
                .unwrap()
                .throughput
        };
        let fast = ipc(&no_branch);
        let slow = ipc(&all_branch);
        // With 1-word instructions the buffer is shallow, so the flush
        // penalty is modest but must be strictly visible.
        assert!(
            slow < fast * 0.95,
            "flushing must hurt: no-branch {fast} vs all-branch {slow}"
        );
    }

    #[test]
    fn validation_rejects_bad_isa() {
        let mut c = InterpretedConfig::default();
        c.instruction_types.clear();
        assert!(build(&c).is_err());

        let mut c = InterpretedConfig::default();
        c.instruction_types[0].length_words = 0;
        assert!(build(&c).is_err());

        let mut c = InterpretedConfig::default();
        c.instruction_types[0].length_words = 99;
        assert!(build(&c).is_err());
    }
}
