//! Trace filtering — the paper's answer to "too much detail".
//!
//! "By default the P-NUT simulator retains all information about all
//! places and transitions in the net. Yet, usually only a handful of
//! places and transitions are of interest in performing a particular
//! analysis. The P-NUT system therefore provides a filtering tool from
//! which significantly smaller traces can be obtained." (paper §4.1)

use crate::{Delta, DeltaKind, TraceHeader, TraceSink};
use pnut_core::{PlaceId, Time, TransitionId};
use std::collections::BTreeSet;

/// What a [`Filter`] keeps. Build with the `keep_*` methods; everything
/// not explicitly kept is dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterSpec {
    places: BTreeSet<String>,
    transitions: BTreeSet<String>,
    keep_vars: bool,
}

impl FilterSpec {
    /// Keep nothing (the empty filter).
    pub fn new() -> Self {
        Self::default()
    }

    /// Keep deltas touching the named place.
    pub fn keep_place(mut self, name: impl Into<String>) -> Self {
        self.places.insert(name.into());
        self
    }

    /// Keep deltas touching the named transition.
    pub fn keep_transition(mut self, name: impl Into<String>) -> Self {
        self.transitions.insert(name.into());
        self
    }

    /// Keep several places.
    pub fn keep_places<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.places.extend(names.into_iter().map(Into::into));
        self
    }

    /// Keep several transitions.
    pub fn keep_transitions<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.transitions.extend(names.into_iter().map(Into::into));
        self
    }

    /// Keep variable assignments.
    pub fn keep_variables(mut self) -> Self {
        self.keep_vars = true;
        self
    }
}

/// A [`TraceSink`] adapter that forwards only the deltas selected by a
/// [`FilterSpec`] to its inner sink.
///
/// The header passes through unchanged (ids stay valid), so filtered
/// traces remain readable by every analysis tool; they are just smaller.
///
/// # Example
///
/// ```
/// use pnut_trace::{Filter, FilterSpec, Recorder};
///
/// let spec = FilterSpec::new().keep_place("Bus_busy").keep_transition("Issue");
/// let filter = Filter::new(spec, Recorder::new());
/// # let _ = filter;
/// ```
#[derive(Debug)]
pub struct Filter<S> {
    spec: FilterSpec,
    inner: S,
    // Resolved at `begin` time from the header.
    place_ids: BTreeSet<PlaceId>,
    transition_ids: BTreeSet<TransitionId>,
}

impl<S: TraceSink> Filter<S> {
    /// Wrap `inner` with the given spec.
    pub fn new(spec: FilterSpec, inner: S) -> Self {
        Filter {
            spec,
            inner,
            place_ids: BTreeSet::new(),
            transition_ids: BTreeSet::new(),
        }
    }

    /// Recover the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn keeps(&self, delta: &Delta) -> bool {
        match &delta.kind {
            DeltaKind::Start { transition, .. } | DeltaKind::Finish { transition, .. } => {
                self.transition_ids.contains(transition)
            }
            DeltaKind::PlaceDelta { place, .. } => self.place_ids.contains(place),
            DeltaKind::VarSet { .. } => self.spec.keep_vars,
        }
    }
}

impl<S: TraceSink> TraceSink for Filter<S> {
    fn begin(&mut self, header: &TraceHeader) {
        self.place_ids = self
            .spec
            .places
            .iter()
            .filter_map(|n| header.place_id(n))
            .collect();
        self.transition_ids = self
            .spec
            .transitions
            .iter()
            .filter_map(|n| header.transition_id(n))
            .collect();
        self.inner.begin(header);
    }

    fn delta(&mut self, delta: &Delta) {
        if self.keeps(delta) {
            self.inner.delta(delta);
        }
    }

    fn end(&mut self, end_time: Time) {
        self.inner.end(end_time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingSink, Recorder};
    use pnut_core::expr::Value;

    fn header() -> TraceHeader {
        TraceHeader::new(
            "n",
            vec!["a".into(), "b".into()],
            vec!["t0".into(), "t1".into()],
        )
        .with_initial_marking(vec![0, 0])
    }

    fn deltas() -> Vec<Delta> {
        vec![
            Delta::new(
                Time::from_ticks(1),
                0,
                DeltaKind::Start {
                    transition: TransitionId::new(0),
                    firing: 0,
                },
            ),
            Delta::new(
                Time::from_ticks(1),
                0,
                DeltaKind::PlaceDelta {
                    place: PlaceId::new(0),
                    delta: 1,
                },
            ),
            Delta::new(
                Time::from_ticks(2),
                1,
                DeltaKind::PlaceDelta {
                    place: PlaceId::new(1),
                    delta: 1,
                },
            ),
            Delta::new(
                Time::from_ticks(3),
                2,
                DeltaKind::VarSet {
                    name: "x".into(),
                    value: Value::Int(1),
                },
            ),
        ]
    }

    fn run_filter(spec: FilterSpec) -> usize {
        let mut f = Filter::new(spec, CountingSink::new());
        f.begin(&header());
        for d in deltas() {
            f.delta(&d);
        }
        f.end(Time::from_ticks(5));
        f.into_inner().deltas as usize
    }

    #[test]
    fn empty_filter_drops_everything() {
        assert_eq!(run_filter(FilterSpec::new()), 0);
    }

    #[test]
    fn selects_by_place_and_transition() {
        assert_eq!(run_filter(FilterSpec::new().keep_place("a")), 1);
        assert_eq!(run_filter(FilterSpec::new().keep_transition("t0")), 1);
        assert_eq!(run_filter(FilterSpec::new().keep_places(["a", "b"])), 2);
        assert_eq!(
            run_filter(
                FilterSpec::new()
                    .keep_places(["a", "b"])
                    .keep_transitions(["t0"])
                    .keep_variables()
            ),
            4
        );
    }

    #[test]
    fn unknown_names_are_ignored() {
        assert_eq!(run_filter(FilterSpec::new().keep_place("nope")), 0);
    }

    #[test]
    fn filtered_trace_is_still_a_trace() {
        let spec = FilterSpec::new().keep_place("b");
        let mut f = Filter::new(spec, Recorder::new());
        f.begin(&header());
        for d in deltas() {
            f.delta(&d);
        }
        f.end(Time::from_ticks(5));
        let t = f.into_inner().into_trace().unwrap();
        assert_eq!(t.deltas().len(), 1);
        assert_eq!(t.header().place_names.len(), 2, "header unchanged");
    }

    #[test]
    fn filtered_trace_reconstructs_partial_states() {
        let spec = FilterSpec::new().keep_place("a").keep_variables();
        let mut f = Filter::new(spec, Recorder::new());
        f.begin(&header());
        for d in deltas() {
            f.delta(&d);
        }
        f.end(Time::from_ticks(5));
        let t = f.into_inner().into_trace().unwrap();
        // Place `a` evolves; place `b` (filtered out) stays at its
        // initial value in reconstructed states.
        let states: Vec<_> = t.states().collect();
        let last = states.last().unwrap();
        assert_eq!(last.marking.tokens(PlaceId::new(0)), 1, "a updated");
        assert_eq!(last.marking.tokens(PlaceId::new(1)), 0, "b frozen");
        assert_eq!(last.env.var("x"), Some(Value::Int(1)), "kept variable");
    }

    #[test]
    fn filter_is_idempotent() {
        let spec = FilterSpec::new().keep_place("a").keep_transition("t0");
        let mut once = Filter::new(spec.clone(), Recorder::new());
        once.begin(&header());
        for d in deltas() {
            once.delta(&d);
        }
        once.end(Time::from_ticks(5));
        let first = once.into_inner().into_trace().unwrap();

        let mut twice = Filter::new(spec, Recorder::new());
        first.replay(&mut twice);
        let second = twice.into_inner().into_trace().unwrap();
        assert_eq!(first, second);
    }
}
