//! Streaming sinks: the "pipe" between simulator and analysis tools.

use crate::{Delta, RecordedTrace, TraceHeader};
use pnut_core::Time;

/// A consumer of trace events.
///
/// The simulator's output "can be directly plugged into the input of
/// analysis tools, thereby eliminating the need for storing large files"
/// (paper §4.1). Implement this trait to build an analysis tool; use
/// [`Tee`] to feed several tools from one simulation run.
pub trait TraceSink {
    /// Called once before any delta, with the initial-state description.
    fn begin(&mut self, header: &TraceHeader);

    /// Called for every state delta, in order.
    fn delta(&mut self, delta: &Delta);

    /// Called once when the experiment ends.
    fn end(&mut self, end_time: Time);
}

/// Forward every event to both of two sinks.
#[derive(Debug, Default)]
pub struct Tee<A, B> {
    /// First downstream sink.
    pub first: A,
    /// Second downstream sink.
    pub second: B,
}

impl<A: TraceSink, B: TraceSink> Tee<A, B> {
    /// Combine two sinks.
    pub fn new(first: A, second: B) -> Self {
        Tee { first, second }
    }

    /// Split back into the two sinks.
    pub fn into_parts(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<A, B> {
    fn begin(&mut self, header: &TraceHeader) {
        self.first.begin(header);
        self.second.begin(header);
    }

    fn delta(&mut self, delta: &Delta) {
        self.first.delta(delta);
        self.second.delta(delta);
    }

    fn end(&mut self, end_time: Time) {
        self.first.end(end_time);
        self.second.end(end_time);
    }
}

/// Record the whole trace in memory.
#[derive(Debug, Default)]
pub struct Recorder {
    header: Option<TraceHeader>,
    deltas: Vec<Delta>,
    end_time: Option<Time>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extract the recorded trace; `None` if `begin`/`end` were never
    /// called.
    pub fn into_trace(self) -> Option<RecordedTrace> {
        Some(RecordedTrace::new(
            self.header?,
            self.deltas,
            self.end_time?,
        ))
    }

    /// Number of deltas recorded so far.
    pub fn delta_count(&self) -> usize {
        self.deltas.len()
    }
}

impl TraceSink for Recorder {
    fn begin(&mut self, header: &TraceHeader) {
        self.header = Some(header.clone());
        self.deltas.clear();
        self.end_time = None;
    }

    fn delta(&mut self, delta: &Delta) {
        self.deltas.push(delta.clone());
    }

    fn end(&mut self, end_time: Time) {
        self.end_time = Some(end_time);
    }
}

/// Count events without storing them (for overhead measurements and
/// tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of `begin` calls observed.
    pub begins: u64,
    /// Number of deltas observed.
    pub deltas: u64,
    /// Number of `end` calls observed.
    pub ends: u64,
}

impl CountingSink {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for CountingSink {
    fn begin(&mut self, _header: &TraceHeader) {
        self.begins += 1;
    }

    fn delta(&mut self, _delta: &Delta) {
        self.deltas += 1;
    }

    fn end(&mut self, _end_time: Time) {
        self.ends += 1;
    }
}

/// A sink that discards everything (useful to run a simulation purely
/// for its side effects on other tees).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn begin(&mut self, _header: &TraceHeader) {}
    fn delta(&mut self, _delta: &Delta) {}
    fn end(&mut self, _end_time: Time) {}
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn begin(&mut self, header: &TraceHeader) {
        (**self).begin(header);
    }

    fn delta(&mut self, delta: &Delta) {
        (**self).delta(delta);
    }

    fn end(&mut self, end_time: Time) {
        (**self).end(end_time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeltaKind;
    use pnut_core::PlaceId;

    fn header() -> TraceHeader {
        TraceHeader::new("n", vec!["p".into()], vec![]).with_initial_marking(vec![0])
    }

    fn a_delta() -> Delta {
        Delta::new(
            Time::from_ticks(1),
            0,
            DeltaKind::PlaceDelta {
                place: PlaceId::new(0),
                delta: 1,
            },
        )
    }

    #[test]
    fn tee_duplicates_events() {
        let mut tee = Tee::new(CountingSink::new(), CountingSink::new());
        tee.begin(&header());
        tee.delta(&a_delta());
        tee.delta(&a_delta());
        tee.end(Time::from_ticks(5));
        let (a, b) = tee.into_parts();
        assert_eq!(a.deltas, 2);
        assert_eq!(a, b);
        assert_eq!(a.begins, 1);
        assert_eq!(a.ends, 1);
    }

    #[test]
    fn recorder_requires_begin_and_end() {
        let rec = Recorder::new();
        assert!(rec.into_trace().is_none());
        let mut rec = Recorder::new();
        rec.begin(&header());
        assert!(rec.into_trace().is_none(), "missing end");
        let mut rec = Recorder::new();
        rec.begin(&header());
        rec.delta(&a_delta());
        assert_eq!(rec.delta_count(), 1);
        rec.end(Time::from_ticks(2));
        let t = rec.into_trace().unwrap();
        assert_eq!(t.deltas().len(), 1);
    }

    #[test]
    fn begin_resets_recorder() {
        let mut rec = Recorder::new();
        rec.begin(&header());
        rec.delta(&a_delta());
        rec.begin(&header());
        rec.end(Time::ZERO);
        assert_eq!(rec.into_trace().unwrap().deltas().len(), 0);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn feed<S: TraceSink>(mut sink: S) {
            sink.begin(&header());
            sink.delta(&a_delta());
            sink.end(Time::ZERO);
        }
        let mut c = CountingSink::new();
        feed(&mut c); // exercises the blanket `&mut S` impl
        assert_eq!(c.deltas, 1);
    }
}
