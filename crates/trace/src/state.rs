//! State reconstruction from deltas.
//!
//! Analysis tools such as the tracertool query evaluator reason about
//! *states* ("forall s in S [...]", paper §4.4), not raw deltas. A state
//! exists at every atomic-step boundary; this module folds deltas into
//! the running marking / firing-count / variable state.

use crate::{DeltaKind, RecordedTrace};
use pnut_core::expr::Env;
use pnut_core::{Marking, Time, TransitionId};

/// A reconstructed system state at one atomic-step boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceState {
    /// State index (`#0` is the initial state, as in the paper's query
    /// notation).
    pub index: usize,
    /// Simulation time at which this state was entered.
    pub time: Time,
    /// Token counts per place.
    pub marking: Marking,
    /// Number of in-progress firings per transition ("tokens inside the
    /// transition").
    pub firing_counts: Vec<u32>,
    /// Variable environment.
    pub env: Env,
}

impl TraceState {
    /// In-progress firings of `transition`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn firings(&self, transition: TransitionId) -> u32 {
        self.firing_counts[transition.index()]
    }
}

/// Iterator over reconstructed states of a [`RecordedTrace`].
///
/// Yields the initial state first, then one state per atomic step.
#[derive(Debug)]
pub struct StateIter<'a> {
    trace: &'a RecordedTrace,
    pos: usize,
    next_index: usize,
    current: TraceState,
    emitted_initial: bool,
}

impl<'a> StateIter<'a> {
    pub(crate) fn new(trace: &'a RecordedTrace) -> Self {
        let h = trace.header();
        let current = TraceState {
            index: 0,
            time: h.start_time,
            marking: Marking::from_counts(h.initial_marking.clone()),
            firing_counts: vec![0; h.transition_names.len()],
            env: h.initial_env.clone(),
        };
        StateIter {
            trace,
            pos: 0,
            next_index: 1,
            current,
            emitted_initial: false,
        }
    }
}

impl Iterator for StateIter<'_> {
    type Item = TraceState;

    fn next(&mut self) -> Option<TraceState> {
        if !self.emitted_initial {
            self.emitted_initial = true;
            return Some(self.current.clone());
        }
        let mut pos = self.pos;
        let deltas = self.trace.deltas();
        if pos >= deltas.len() {
            return None;
        }
        // Consume all deltas of the current step.
        let step = deltas[pos].step;
        let mut time = deltas[pos].time;
        while pos < deltas.len() && deltas[pos].step == step {
            let d = &deltas[pos];
            time = d.time;
            match &d.kind {
                DeltaKind::Start { transition, .. } => {
                    self.current.firing_counts[transition.index()] += 1;
                }
                DeltaKind::Finish { transition, .. } => {
                    let c = &mut self.current.firing_counts[transition.index()];
                    *c = c.saturating_sub(1);
                }
                DeltaKind::PlaceDelta { place, delta } => {
                    let old = i64::from(self.current.marking.tokens(*place));
                    let new = (old + delta).max(0) as u32;
                    self.current.marking.set(*place, new);
                }
                DeltaKind::VarSet { name, value } => {
                    self.current.env.set_var(name.clone(), *value);
                }
            }
            pos += 1;
        }
        self.pos = pos;
        self.current.time = time;
        self.current.index = self.next_index;
        self.next_index += 1;
        Some(self.current.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delta, TraceHeader};
    use pnut_core::expr::Value;
    use pnut_core::PlaceId;

    fn trace_with(deltas: Vec<Delta>) -> RecordedTrace {
        let header = TraceHeader::new("n", vec!["a".into(), "b".into()], vec!["t".into()])
            .with_initial_marking(vec![2, 0]);
        RecordedTrace::new(header, deltas, Time::from_ticks(100))
    }

    #[test]
    fn initial_state_only_for_empty_trace() {
        let t = trace_with(vec![]);
        let states: Vec<_> = t.states().collect();
        assert_eq!(states.len(), 1);
        assert_eq!(states[0].index, 0);
        assert_eq!(states[0].marking.tokens(PlaceId::new(0)), 2);
    }

    #[test]
    fn steps_are_atomic() {
        // One step moves a token a -> b via two deltas; no intermediate
        // state where the token is on neither place may be observed.
        let t = trace_with(vec![
            Delta::new(
                Time::from_ticks(5),
                0,
                DeltaKind::PlaceDelta {
                    place: PlaceId::new(0),
                    delta: -1,
                },
            ),
            Delta::new(
                Time::from_ticks(5),
                0,
                DeltaKind::PlaceDelta {
                    place: PlaceId::new(1),
                    delta: 1,
                },
            ),
        ]);
        let states: Vec<_> = t.states().collect();
        assert_eq!(states.len(), 2);
        for s in &states {
            let sum = s.marking.tokens(PlaceId::new(0)) + s.marking.tokens(PlaceId::new(1));
            assert_eq!(sum, 2, "token conservation visible at step boundaries");
        }
        assert_eq!(states[1].time, Time::from_ticks(5));
        assert_eq!(states[1].index, 1);
    }

    #[test]
    fn firing_counts_track_start_finish() {
        let t = trace_with(vec![
            Delta::new(
                Time::from_ticks(1),
                0,
                DeltaKind::Start {
                    transition: TransitionId::new(0),
                    firing: 0,
                },
            ),
            Delta::new(
                Time::from_ticks(2),
                1,
                DeltaKind::Start {
                    transition: TransitionId::new(0),
                    firing: 1,
                },
            ),
            Delta::new(
                Time::from_ticks(3),
                2,
                DeltaKind::Finish {
                    transition: TransitionId::new(0),
                    firing: 0,
                },
            ),
        ]);
        let counts: Vec<u32> = t
            .states()
            .map(|s| s.firings(TransitionId::new(0)))
            .collect();
        assert_eq!(counts, vec![0, 1, 2, 1]);
    }

    #[test]
    fn variables_flow_into_states() {
        let t = trace_with(vec![Delta::new(
            Time::from_ticks(1),
            0,
            DeltaKind::VarSet {
                name: "type".into(),
                value: Value::Int(3),
            },
        )]);
        let states: Vec<_> = t.states().collect();
        assert!(states[0].env.var("type").is_none());
        assert_eq!(states[1].env.var("type"), Some(Value::Int(3)));
    }

    #[test]
    fn state_indices_are_sequential() {
        let deltas: Vec<Delta> = (0..5)
            .map(|i| {
                Delta::new(
                    Time::from_ticks(i),
                    i,
                    DeltaKind::PlaceDelta {
                        place: PlaceId::new(1),
                        delta: 1,
                    },
                )
            })
            .collect();
        let t = trace_with(deltas);
        let indices: Vec<usize> = t.states().map(|s| s.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4, 5]);
    }
}
