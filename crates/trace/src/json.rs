//! Self-contained JSON interchange for recorded traces.
//!
//! The paper's tools exchange traces as plain text so they can be piped
//! between processes; this module is the modern JSON equivalent,
//! implemented directly (writer + recursive-descent reader) so the trace
//! crate stays free of external dependencies. The schema is flat and
//! stable:
//!
//! ```json
//! {
//!   "net_name": "bus",
//!   "place_names": ["Bus_free"],
//!   "transition_names": ["seize"],
//!   "initial_marking": [1],
//!   "initial_env": {"vars": {"x": 1}, "tables": {"ops": [0, 1]}},
//!   "start_time": 0,
//!   "end_time": 100,
//!   "deltas": [
//!     {"time": 1, "step": 0, "kind": {"type": "start", "transition": 0, "firing": 0}},
//!     {"time": 1, "step": 0, "kind": {"type": "place", "place": 0, "delta": -1}},
//!     {"time": 2, "step": 1, "kind": {"type": "var", "name": "x", "value": true}}
//!   ]
//! }
//! ```

use crate::{Delta, DeltaKind, RecordedTrace, TraceHeader};
use pnut_core::expr::{Env, Value};
use pnut_core::{PlaceId, Time, TransitionId};
use std::fmt;
use std::io::{Read, Write};

/// Why encoding or decoding a trace failed.
#[derive(Debug)]
pub enum JsonError {
    /// The underlying reader or writer failed.
    Io(std::io::Error),
    /// The input is not well-formed JSON.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset in the input.
        offset: usize,
    },
    /// The input is valid JSON but not a valid trace.
    Schema(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Io(e) => write!(f, "i/o: {e}"),
            JsonError::Parse { message, offset } => {
                write!(f, "malformed JSON at byte {offset}: {message}")
            }
            JsonError::Schema(m) => write!(f, "not a trace: {m}"),
        }
    }
}

impl std::error::Error for JsonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JsonError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JsonError {
    fn from(e: std::io::Error) -> Self {
        JsonError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_str(out: &mut impl Write, s: &str) -> Result<(), JsonError> {
    out.write_all(b"\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_all(b"\\\"")?,
            '\\' => out.write_all(b"\\\\")?,
            '\n' => out.write_all(b"\\n")?,
            '\r' => out.write_all(b"\\r")?,
            '\t' => out.write_all(b"\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_all(b"\"")?;
    Ok(())
}

fn write_str_list(out: &mut impl Write, items: &[String]) -> Result<(), JsonError> {
    out.write_all(b"[")?;
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write_str(out, s)?;
    }
    out.write_all(b"]")?;
    Ok(())
}

fn write_value(out: &mut impl Write, v: Value) -> Result<(), JsonError> {
    match v {
        Value::Int(i) => write!(out, "{i}")?,
        Value::Bool(b) => write!(out, "{b}")?,
    }
    Ok(())
}

fn write_env(out: &mut impl Write, env: &Env) -> Result<(), JsonError> {
    out.write_all(b"{\"vars\":{")?;
    for (i, (name, v)) in env.vars().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write_str(out, name)?;
        out.write_all(b":")?;
        write_value(out, v)?;
    }
    out.write_all(b"},\"tables\":{")?;
    for (i, (name, vals)) in env.tables().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write_str(out, name)?;
        out.write_all(b":[")?;
        for (j, v) in vals.iter().enumerate() {
            if j > 0 {
                out.write_all(b",")?;
            }
            write!(out, "{v}")?;
        }
        out.write_all(b"]")?;
    }
    out.write_all(b"}}")?;
    Ok(())
}

fn write_delta(out: &mut impl Write, d: &Delta) -> Result<(), JsonError> {
    write!(
        out,
        "{{\"time\":{},\"step\":{},\"kind\":",
        d.time.ticks(),
        d.step
    )?;
    match &d.kind {
        DeltaKind::Start { transition, firing } => write!(
            out,
            "{{\"type\":\"start\",\"transition\":{},\"firing\":{firing}}}",
            transition.index()
        )?,
        DeltaKind::Finish { transition, firing } => write!(
            out,
            "{{\"type\":\"finish\",\"transition\":{},\"firing\":{firing}}}",
            transition.index()
        )?,
        DeltaKind::PlaceDelta { place, delta } => write!(
            out,
            "{{\"type\":\"place\",\"place\":{},\"delta\":{delta}}}",
            place.index()
        )?,
        DeltaKind::VarSet { name, value } => {
            out.write_all(b"{\"type\":\"var\",\"name\":")?;
            write_str(out, name)?;
            out.write_all(b",\"value\":")?;
            write_value(out, *value)?;
            out.write_all(b"}")?;
        }
    }
    out.write_all(b"}")?;
    Ok(())
}

pub(crate) fn write_trace(trace: &RecordedTrace, mut out: impl Write) -> Result<(), JsonError> {
    let h = trace.header();
    out.write_all(b"{\"net_name\":")?;
    write_str(&mut out, &h.net_name)?;
    out.write_all(b",\"place_names\":")?;
    write_str_list(&mut out, &h.place_names)?;
    out.write_all(b",\"transition_names\":")?;
    write_str_list(&mut out, &h.transition_names)?;
    out.write_all(b",\"initial_marking\":[")?;
    for (i, t) in h.initial_marking.iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write!(out, "{t}")?;
    }
    out.write_all(b"],\"initial_env\":")?;
    write_env(&mut out, &h.initial_env)?;
    write!(out, ",\"start_time\":{}", h.start_time.ticks())?;
    write!(out, ",\"end_time\":{}", trace.end_time().ticks())?;
    out.write_all(b",\"deltas\":[")?;
    for (i, d) in trace.deltas().iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write_delta(&mut out, d)?;
    }
    out.write_all(b"]}")?;
    out.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are kept as `i128` when integral so
/// `u64` tick counts round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Nesting ceiling for the recursive-descent parser: traces nest a
/// handful of levels, so anything deeper is garbage — reject it as a
/// parse error instead of overflowing the stack.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError::Parse {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        self.depth += 1;
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_lit("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_lit("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Traces only emit BMP characters; surrogate
                            // pairs decode to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse()
                .map(Json::Int)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes,
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Schema mapping
// ---------------------------------------------------------------------------

fn schema(msg: impl Into<String>) -> JsonError {
    JsonError::Schema(msg.into())
}

fn field<'v>(obj: &'v Json, name: &str) -> Result<&'v Json, JsonError> {
    match obj {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| schema(format!("missing field `{name}`"))),
        other => Err(schema(format!(
            "expected object, found {}",
            other.type_name()
        ))),
    }
}

fn as_int<T: TryFrom<i128>>(v: &Json, what: &str) -> Result<T, JsonError> {
    match v {
        Json::Int(i) => T::try_from(*i).map_err(|_| schema(format!("{what}: {i} out of range"))),
        other => Err(schema(format!(
            "{what}: expected integer, found {}",
            other.type_name()
        ))),
    }
}

fn as_str<'v>(v: &'v Json, what: &str) -> Result<&'v str, JsonError> {
    match v {
        Json::Str(s) => Ok(s),
        other => Err(schema(format!(
            "{what}: expected string, found {}",
            other.type_name()
        ))),
    }
}

fn as_arr<'v>(v: &'v Json, what: &str) -> Result<&'v [Json], JsonError> {
    match v {
        Json::Arr(items) => Ok(items),
        other => Err(schema(format!(
            "{what}: expected array, found {}",
            other.type_name()
        ))),
    }
}

fn as_value(v: &Json, what: &str) -> Result<Value, JsonError> {
    match v {
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(_) => Ok(Value::Int(as_int(v, what)?)),
        other => Err(schema(format!(
            "{what}: expected integer or bool, found {}",
            other.type_name()
        ))),
    }
}

fn read_env(v: &Json) -> Result<Env, JsonError> {
    let mut env = Env::new();
    if let Json::Obj(vars) = field(v, "vars")? {
        for (name, val) in vars {
            env.set_var(name.clone(), as_value(val, "env var")?);
        }
    } else {
        return Err(schema("env `vars` must be an object"));
    }
    if let Json::Obj(tables) = field(v, "tables")? {
        for (name, val) in tables {
            let items = as_arr(val, "env table")?
                .iter()
                .map(|x| as_int(x, "table element"))
                .collect::<Result<Vec<i64>, _>>()?;
            env.define_table(name.clone(), items);
        }
    } else {
        return Err(schema("env `tables` must be an object"));
    }
    Ok(env)
}

/// Parse one delta kind, validating place/transition indices against
/// the header so malformed traces fail here with a schema error instead
/// of panicking downstream in `StateIter`.
fn read_kind(v: &Json, places: usize, transitions: usize) -> Result<DeltaKind, JsonError> {
    let transition_id = |v: &Json| -> Result<TransitionId, JsonError> {
        let i: usize = as_int(v, "transition")?;
        if i >= transitions {
            return Err(schema(format!(
                "transition index {i} out of range ({transitions} transitions)"
            )));
        }
        Ok(TransitionId::new(i))
    };
    match as_str(field(v, "type")?, "delta kind")? {
        "start" => Ok(DeltaKind::Start {
            transition: transition_id(field(v, "transition")?)?,
            firing: as_int(field(v, "firing")?, "firing")?,
        }),
        "finish" => Ok(DeltaKind::Finish {
            transition: transition_id(field(v, "transition")?)?,
            firing: as_int(field(v, "firing")?, "firing")?,
        }),
        "place" => {
            let place: usize = as_int(field(v, "place")?, "place")?;
            if place >= places {
                return Err(schema(format!(
                    "place index {place} out of range ({places} places)"
                )));
            }
            Ok(DeltaKind::PlaceDelta {
                place: PlaceId::new(place),
                delta: as_int(field(v, "delta")?, "delta")?,
            })
        }
        "var" => Ok(DeltaKind::VarSet {
            name: as_str(field(v, "name")?, "var name")?.to_string(),
            value: as_value(field(v, "value")?, "var value")?,
        }),
        other => Err(schema(format!("unknown delta kind `{other}`"))),
    }
}

pub(crate) fn read_trace(mut reader: impl Read) -> Result<RecordedTrace, JsonError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    let root = parse(&bytes)?;

    let place_names = as_arr(field(&root, "place_names")?, "place_names")?
        .iter()
        .map(|v| as_str(v, "place name").map(str::to_string))
        .collect::<Result<Vec<_>, _>>()?;
    let transition_names = as_arr(field(&root, "transition_names")?, "transition_names")?
        .iter()
        .map(|v| as_str(v, "transition name").map(str::to_string))
        .collect::<Result<Vec<_>, _>>()?;
    let initial_marking = as_arr(field(&root, "initial_marking")?, "initial_marking")?
        .iter()
        .map(|v| as_int(v, "marking entry"))
        .collect::<Result<Vec<u32>, _>>()?;
    if initial_marking.len() != place_names.len() {
        return Err(schema("initial_marking length differs from place_names"));
    }

    let header = TraceHeader {
        net_name: as_str(field(&root, "net_name")?, "net_name")?.to_string(),
        place_names,
        transition_names,
        initial_marking,
        initial_env: read_env(field(&root, "initial_env")?)?,
        start_time: Time::from_ticks(as_int(field(&root, "start_time")?, "start_time")?),
    };

    let deltas = as_arr(field(&root, "deltas")?, "deltas")?
        .iter()
        .map(|d| {
            Ok(Delta {
                time: Time::from_ticks(as_int(field(d, "time")?, "delta time")?),
                step: as_int(field(d, "step")?, "delta step")?,
                kind: read_kind(
                    field(d, "kind")?,
                    header.place_names.len(),
                    header.transition_names.len(),
                )?,
            })
        })
        .collect::<Result<Vec<_>, JsonError>>()?;

    let end_time = Time::from_ticks(as_int(field(&root, "end_time")?, "end_time")?);
    Ok(RecordedTrace::new(header, deltas, end_time))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_scalars_and_nesting() {
        assert_eq!(parse(b"null").unwrap(), Json::Null);
        assert_eq!(parse(b" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse(b"-42").unwrap(), Json::Int(-42));
        assert_eq!(parse(b"1.5").unwrap(), Json::Float(1.5));
        assert_eq!(parse(br#""a\nbA""#).unwrap(), Json::Str("a\nbA".into()));
        let v = parse(br#"{"a": [1, {"b": []}], "c": "x"}"#).unwrap();
        assert_eq!(as_arr(field(&v, "a").unwrap(), "a").unwrap().len(), 2);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            &b"{"[..],
            b"[1,",
            b"\"unterminated",
            b"12 34",
            b"{\"a\" 1}",
            b"nulll",
        ] {
            assert!(parse(bad).is_err(), "should fail: {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_crash() {
        let bomb = vec![b'['; 100_000];
        let e = parse(&bomb).unwrap_err();
        assert!(e.to_string().contains("nesting"), "{e}");
    }

    #[test]
    fn out_of_range_delta_indices_are_schema_errors() {
        let t = br#"{"net_name":"n","place_names":["p"],"transition_names":["t"],
            "initial_marking":[0],"initial_env":{"vars":{},"tables":{}},"start_time":0,
            "deltas":[{"time":0,"step":0,"kind":{"type":"place","place":99,"delta":1}}],
            "end_time":0}"#;
        let e = read_trace(&t[..]).unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
        let t = br#"{"net_name":"n","place_names":["p"],"transition_names":["t"],
            "initial_marking":[0],"initial_env":{"vars":{},"tables":{}},"start_time":0,
            "deltas":[{"time":0,"step":0,"kind":{"type":"start","transition":7,"firing":1}}],
            "end_time":0}"#;
        let e = read_trace(&t[..]).unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
    }

    #[test]
    fn schema_errors_are_descriptive() {
        let e = read_trace(&b"{}"[..]).unwrap_err();
        assert!(e.to_string().contains("missing field"), "{e}");
        let e = read_trace(&b"[1]"[..]).unwrap_err();
        assert!(e.to_string().contains("object"), "{e}");
    }

    #[test]
    fn huge_tick_counts_round_trip() {
        let header = TraceHeader::new("t", vec![], vec![]);
        let trace = RecordedTrace::new(header, vec![], Time::from_ticks(u64::MAX));
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.end_time(), Time::from_ticks(u64::MAX));
    }
}
