#![forbid(unsafe_code)]

//! # pnut-trace — simulation traces
//!
//! The P-NUT simulator "simply generates a trace: the description of the
//! initial state of the system, followed by a series of state deltas
//! describing how the state of the system changes over time" (paper
//! §4.1). Decoupling the simulation engine from analysis tools through
//! this intermediate representation is the paper's key architectural
//! point: traces are tool-independent and can be *piped* directly into
//! analyzers so long experiments never hit disk.
//!
//! This crate provides:
//!
//! * the trace data model ([`TraceHeader`], [`Delta`], [`DeltaKind`]);
//! * the streaming [`TraceSink`] trait that simulators write into and
//!   analysis tools implement;
//! * plumbing sinks: [`Recorder`] (in-memory [`RecordedTrace`]),
//!   [`Filter`] (the paper's trace-filtering tool), [`Tee`] (feed two
//!   tools at once), [`CountingSink`];
//! * state reconstruction ([`RecordedTrace::states`]) for tools that
//!   need to walk system states rather than raw deltas;
//! * JSON serialization for interchange (the modern stand-in for the
//!   paper's textual trace format consumed by `tbl`/`troff` pipelines).
//!
//! # Example
//!
//! ```
//! use pnut_trace::{Delta, DeltaKind, Recorder, TraceHeader, TraceSink};
//! use pnut_core::{PlaceId, Time};
//!
//! let header = TraceHeader::new("demo", vec!["p".into()], vec!["t".into()])
//!     .with_initial_marking(vec![1]);
//! let mut rec = Recorder::new();
//! rec.begin(&header);
//! rec.delta(&Delta::new(Time::from_ticks(3), 0, DeltaKind::PlaceDelta {
//!     place: PlaceId::new(0),
//!     delta: -1,
//! }));
//! rec.end(Time::from_ticks(10));
//! let trace = rec.into_trace().expect("trace complete");
//! assert_eq!(trace.deltas().len(), 1);
//! assert_eq!(trace.end_time(), Time::from_ticks(10));
//! ```

mod filter;
mod json;
mod sink;
mod state;

pub use filter::{Filter, FilterSpec};
pub use json::JsonError;
pub use sink::{CountingSink, NullSink, Recorder, Tee, TraceSink};
pub use state::{StateIter, TraceState};

use pnut_core::expr::{Env, Value};
use pnut_core::{PlaceId, Time, TransitionId};
use std::fmt;
use std::io::{Read, Write};

/// Description of the initial state of the system (paper §4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// Name of the net that produced the trace.
    pub net_name: String,
    /// Place names, in id order.
    pub place_names: Vec<String>,
    /// Transition names, in id order.
    pub transition_names: Vec<String>,
    /// Initial token counts, in place-id order.
    pub initial_marking: Vec<u32>,
    /// Initial variable environment.
    pub initial_env: Env,
    /// Initial clock value.
    pub start_time: Time,
}

impl TraceHeader {
    /// Create a header with empty marking and environment.
    pub fn new(
        net_name: impl Into<String>,
        place_names: Vec<String>,
        transition_names: Vec<String>,
    ) -> Self {
        let places = place_names.len();
        TraceHeader {
            net_name: net_name.into(),
            place_names,
            transition_names,
            initial_marking: vec![0; places],
            initial_env: Env::new(),
            start_time: Time::ZERO,
        }
    }

    /// Set the initial marking (must match the number of places).
    ///
    /// # Panics
    ///
    /// Panics if the count length differs from `place_names`.
    pub fn with_initial_marking(mut self, counts: Vec<u32>) -> Self {
        assert_eq!(
            counts.len(),
            self.place_names.len(),
            "initial marking must cover every place"
        );
        self.initial_marking = counts;
        self
    }

    /// Set the initial variable environment.
    pub fn with_initial_env(mut self, env: Env) -> Self {
        self.initial_env = env;
        self
    }

    /// Find a place id by name.
    pub fn place_id(&self, name: &str) -> Option<PlaceId> {
        self.place_names
            .iter()
            .position(|n| n == name)
            .map(PlaceId::new)
    }

    /// Find a transition id by name.
    pub fn transition_id(&self, name: &str) -> Option<TransitionId> {
        self.transition_names
            .iter()
            .position(|n| n == name)
            .map(TransitionId::new)
    }

    /// Name of a place.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn place_name(&self, id: PlaceId) -> &str {
        &self.place_names[id.index()]
    }

    /// Name of a transition.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn transition_name(&self, id: TransitionId) -> &str {
        &self.transition_names[id.index()]
    }
}

/// One kind of state change.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaKind {
    /// A transition started firing; its input tokens have been removed
    /// (separate [`DeltaKind::PlaceDelta`] entries in the same step record
    /// the removals). `firing` numbers the firing instance so starts and
    /// finishes can be paired.
    Start {
        /// The transition.
        transition: TransitionId,
        /// Firing-instance number, unique per transition.
        firing: u64,
    },
    /// A transition finished firing; its output tokens have been added.
    Finish {
        /// The transition.
        transition: TransitionId,
        /// Firing-instance number matching the corresponding start.
        firing: u64,
    },
    /// The token count of a place changed by `delta`.
    PlaceDelta {
        /// The place.
        place: PlaceId,
        /// Signed token-count change.
        delta: i64,
    },
    /// A variable was assigned by an action.
    VarSet {
        /// Variable name.
        name: String,
        /// New value.
        value: Value,
    },
}

/// A timestamped state delta.
///
/// Deltas sharing a `step` belong to one *atomic* event (one firing
/// start or finish together with its token movements); analysis tools
/// must only observe states at step boundaries. This is what makes the
/// paper's §4.4 invariant `Bus_busy + Bus_free = 1` checkable: the
/// removal from one place and addition to the other are a single step.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Simulation time of the change.
    pub time: Time,
    /// Atomic-step counter; monotonically non-decreasing.
    pub step: u64,
    /// What changed.
    pub kind: DeltaKind,
}

impl Delta {
    /// Construct a delta.
    pub fn new(time: Time, step: u64, kind: DeltaKind) -> Self {
        Delta { time, step, kind }
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} #{} ", self.time, self.step)?;
        match &self.kind {
            DeltaKind::Start { transition, firing } => {
                write!(f, "start {transition} (firing {firing})")
            }
            DeltaKind::Finish { transition, firing } => {
                write!(f, "finish {transition} (firing {firing})")
            }
            DeltaKind::PlaceDelta { place, delta } => write!(f, "{place} {delta:+}"),
            DeltaKind::VarSet { name, value } => write!(f, "{name} = {value}"),
        }
    }
}

/// A fully recorded trace: header, deltas, and end time.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    header: TraceHeader,
    deltas: Vec<Delta>,
    end_time: Time,
}

impl RecordedTrace {
    /// Assemble a trace from parts (normally produced by [`Recorder`]).
    pub fn new(header: TraceHeader, deltas: Vec<Delta>, end_time: Time) -> Self {
        RecordedTrace {
            header,
            deltas,
            end_time,
        }
    }

    /// The initial-state description.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The state deltas in order.
    pub fn deltas(&self) -> &[Delta] {
        &self.deltas
    }

    /// Time at which the simulation experiment ended.
    pub fn end_time(&self) -> Time {
        self.end_time
    }

    /// Iterate reconstructed system states at atomic-step boundaries,
    /// starting with the initial state (`#0` in the paper's query
    /// notation).
    pub fn states(&self) -> StateIter<'_> {
        StateIter::new(self)
    }

    /// Serialize to JSON (see [`json`](self::JsonError) for the schema).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_json<W: Write>(&self, writer: W) -> Result<(), JsonError> {
        json::write_trace(self, writer)
    }

    /// Deserialize from JSON (reminder: `&mut reader` also works).
    ///
    /// # Errors
    ///
    /// Returns a decode error if the input is not a valid trace.
    pub fn read_json<R: Read>(reader: R) -> Result<Self, JsonError> {
        json::read_trace(reader)
    }

    /// Replay this trace into a sink (e.g. to feed a recorded trace to a
    /// streaming analyzer, or through a [`Filter`]).
    pub fn replay<S: TraceSink>(&self, sink: &mut S) {
        sink.begin(&self.header);
        for d in &self.deltas {
            sink.delta(d);
        }
        sink.end(self.end_time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecordedTrace {
        let header = TraceHeader::new("n", vec!["a".into(), "b".into()], vec!["t".into()])
            .with_initial_marking(vec![1, 0]);
        let deltas = vec![
            Delta::new(
                Time::from_ticks(1),
                0,
                DeltaKind::Start {
                    transition: TransitionId::new(0),
                    firing: 0,
                },
            ),
            Delta::new(
                Time::from_ticks(1),
                0,
                DeltaKind::PlaceDelta {
                    place: PlaceId::new(0),
                    delta: -1,
                },
            ),
            Delta::new(
                Time::from_ticks(4),
                1,
                DeltaKind::Finish {
                    transition: TransitionId::new(0),
                    firing: 0,
                },
            ),
            Delta::new(
                Time::from_ticks(4),
                1,
                DeltaKind::PlaceDelta {
                    place: PlaceId::new(1),
                    delta: 1,
                },
            ),
        ];
        RecordedTrace::new(header, deltas, Time::from_ticks(10))
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_json(&mut buf).unwrap();
        let back = RecordedTrace::read_json(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn header_lookup() {
        let t = sample();
        assert_eq!(t.header().place_id("b"), Some(PlaceId::new(1)));
        assert_eq!(t.header().place_id("zz"), None);
        assert_eq!(t.header().transition_name(TransitionId::new(0)), "t");
    }

    #[test]
    fn replay_reproduces_trace() {
        let t = sample();
        let mut rec = Recorder::new();
        t.replay(&mut rec);
        assert_eq!(rec.into_trace().unwrap(), t);
    }

    #[test]
    fn delta_display() {
        let d = Delta::new(
            Time::from_ticks(7),
            3,
            DeltaKind::PlaceDelta {
                place: PlaceId::new(2),
                delta: -2,
            },
        );
        assert_eq!(d.to_string(), "@7 #3 p2 -2");
    }

    #[test]
    #[should_panic(expected = "initial marking must cover every place")]
    fn marking_length_mismatch_panics() {
        let _ = TraceHeader::new("n", vec!["a".into()], vec![]).with_initial_marking(vec![1, 2]);
    }
}
