//! Timing analysis and verification with tracertool (paper §4.4).
//!
//! Demonstrates the paper's full verification workflow:
//!
//! 1. run the §2 pipeline model and check the paper's example queries
//!    against the trace (bus invariant, buffer refill, type-5
//!    occurrence, bus inevitably freed);
//! 2. plot the Figure 7 logic-analyzer timeline (bus activity and its
//!    breakdown, the execution transitions, a user-defined sum, and the
//!    empty-buffer count) with interval markers;
//! 3. inject the §4.4 modeling bug — a non-zero firing time on a bus
//!    transition — and show the invariant query catching it;
//! 4. model-check the enabling-time bus protocol *exhaustively* with the
//!    timed reachability graph (enabling clocks are part of the timed
//!    state), verifying the invariant over every timed behaviour and
//!    reading the bus-held bound off the graph — no simulation luck
//!    involved.
//!
//! Run with: `cargo run --example verify_timing`

use pnut::core::{NetBuilder, Time};
use pnut::pipeline::{three_stage, ThreeStageConfig};
use pnut::tracer::query::Query;
use pnut::tracer::timeline::{Marker, Signal, Timeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = three_stage::build(&ThreeStageConfig::default())?;
    let trace = pnut::sim::simulate(&net, 3, Time::from_ticks(10_000))?;

    // --- The paper's §4.4 queries -----------------------------------------
    let queries = [
        (
            "bus invariant",
            "forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]",
        ),
        (
            "buffer ever fully empty again after the start?",
            "exists s in (S - {#0}) [ Empty_I_buffers(s) = 6 ]",
        ),
        (
            "did we execute a type-5 (50-cycle) instruction?",
            "exists s in S [ exec_type_5(s) > 0 ]",
        ),
        (
            "is the bus always eventually freed?",
            "forall s in {s' in S | Bus_busy(s')} [ inev(s, Bus_free(C), true) ]",
        ),
    ];
    println!("TRACE VERIFICATION (10 000-cycle run)");
    for (what, text) in queries {
        let q = Query::parse(text)?;
        let outcome = q.check(&trace)?;
        println!(
            "  [{}] {what}\n        {text}{}",
            if outcome.holds { "PASS" } else { "FAIL" },
            match outcome.witness {
                Some(w) => format!("  (state #{w})"),
                None => String::new(),
            }
        );
    }

    // --- The Figure 7 timeline --------------------------------------------
    let signals = vec![
        Signal::place("Bus_busy"),
        Signal::place("pre_fetching"),
        Signal::place("fetching"),
        Signal::place("storing"),
        Signal::transition("exec_type_1"),
        Signal::transition("exec_type_2"),
        Signal::transition("exec_type_3"),
        Signal::transition("exec_type_4"),
        Signal::transition("exec_type_5"),
        Signal::function(
            "all_exec",
            "exec_type_1 + exec_type_2 + exec_type_3 + exec_type_4 + exec_type_5",
        )?,
        Signal::place("Empty_I_buffers"),
    ];
    let mut tl = Timeline::sample(
        &trace,
        &signals,
        Time::from_ticks(100),
        Time::from_ticks(200),
    )?;
    tl.add_marker(Marker {
        time: Time::from_ticks(110),
        tag: 'O',
    });
    tl.add_marker(Marker {
        time: Time::from_ticks(158),
        tag: 'X',
    });
    println!("\nTIMING ANALYSIS (cycles 100..200)");
    print!("{tl}");
    if let Some(d) = tl.interval('O', 'X') {
        println!("O <-> X {d}");
    }

    // --- Catch the §4.4 modeling bug ---------------------------------------
    // "An error in the model (for example a non-zero timing in a
    // transition) may cause a token to be removed from both places at
    // the same time."
    let mut b = NetBuilder::new("buggy_bus");
    b.place("Bus_free", 1);
    b.place("Bus_busy", 0);
    b.transition("seize")
        .input("Bus_free")
        .output("Bus_busy")
        .firing(2) // BUG: should be instantaneous
        .add();
    b.transition("release")
        .input("Bus_busy")
        .output("Bus_free")
        .enabling(3)
        .add();
    let buggy = b.build()?;
    let buggy_trace = pnut::sim::simulate(&buggy, 0, Time::from_ticks(50))?;
    let invariant = Query::parse("forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]")?;
    let outcome = invariant.check(&buggy_trace)?;
    println!("\nINJECTED BUG (firing time on a bus transition)");
    println!(
        "  invariant check: {} (counterexample: state #{})",
        if outcome.holds {
            "PASS — unexpected!"
        } else {
            "FAIL — bug caught"
        },
        outcome.witness.unwrap_or(0),
    );
    // The structural analyzer flags it before any simulation, too.
    let group = [
        buggy.place_id("Bus_free").expect("place exists"),
        buggy.place_id("Bus_busy").expect("place exists"),
    ];
    let movers = pnut::core::analysis::nonatomic_group_movers(&buggy, &group);
    println!(
        "  structural check: {} non-atomic bus mover(s) flagged before simulation",
        movers.len()
    );

    // --- Model-check the enabling-time protocol with the timed graph -------
    // A trace query checks one simulated path; the timed reachability
    // graph enumerates *every* timed behaviour — enabling clocks
    // included — so the verdict is exhaustive.
    use pnut::reach::graph::{build_timed, EdgeLabel, ReachOptions};
    let mut b = NetBuilder::new("bus_protocol");
    b.place("Bus_free", 1);
    b.place("Bus_busy", 0);
    b.transition("seize")
        .input("Bus_free")
        .output("Bus_busy")
        .add();
    b.transition("release")
        .input("Bus_busy")
        .output("Bus_free")
        .enabling(3) // hold the bus 3 cycles, then release atomically
        .add();
    let protocol = b.build()?;
    let mut graph = build_timed(&protocol, &ReachOptions::default())?;
    let formula = pnut::reach::ctl::Formula::parse("AG (Bus_busy + Bus_free = 1)")?;
    let verdict = pnut::reach::ctl::check(&mut graph, &protocol, &formula)?;
    let busy = protocol.place_id("Bus_busy").expect("place exists");
    // The verified timing bound: total time the graph lets pass while
    // the bus is held, per acquisition cycle.
    let held: u64 = (0..graph.state_count())
        .filter(|&s| graph.state(s).expect("resident graph").marking.tokens(busy) == 1)
        .flat_map(|s| graph.successors(s).expect("resident graph").iter())
        .map(|&(l, _)| match l {
            EdgeLabel::Advance(d) => d,
            EdgeLabel::Fire(_) => 0,
        })
        .sum();
    println!(
        "\nTIMED MODEL CHECK (enabling-3 release protocol, {} timed states)",
        graph.state_count()
    );
    println!(
        "  bus invariant over ALL timed behaviours: {}",
        if verdict.holds_initially {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    println!("  verified bound: the bus is held exactly {held} cycles per acquisition");
    // The buggy variant fails the same exhaustive check (the in-flight
    // `seize` leaves both places empty — no trace luck involved).
    let mut buggy_graph = build_timed(&buggy, &ReachOptions::default())?;
    let buggy_verdict = pnut::reach::ctl::check(&mut buggy_graph, &buggy, &formula)?;
    println!(
        "  buggy variant: {} ({} of {} timed states satisfy the invariant)",
        if buggy_verdict.holds_initially {
            "HOLDS — unexpected!"
        } else {
            "FAILS — bug proven, not just observed"
        },
        buggy_verdict.count(),
        buggy_graph.state_count()
    );
    Ok(())
}
