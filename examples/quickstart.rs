//! Quickstart: build a small timed Petri net, simulate it, and analyze
//! the trace — the whole P-NUT pipeline in one file.
//!
//! The model is the paper's introductory Figure 1 fragment: instruction
//! prefetching into a 6-word buffer, two words per bus access, with the
//! bus modeled as the complementary `Bus_free` / `Bus_busy` pair.
//!
//! Run with: `cargo run --example quickstart`

use pnut::core::{NetBuilder, Time};
use pnut::sim::Simulator;
use pnut::stat::StatCollector;
use pnut::trace::{Recorder, Tee};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Enumerate events and their pre/post-conditions (paper §1).
    let mut b = NetBuilder::new("prefetch_quickstart");
    b.place("Bus_free", 1);
    b.place("Bus_busy", 0);
    b.place("Empty_I_buffers", 6);
    b.place("Full_I_buffers", 0);
    b.place("pre_fetching", 0);
    b.place("Decoder_ready", 1);
    b.place("Decoded_instruction", 0);

    // Prefetch two words whenever the bus is free and there is room.
    b.transition("Start_prefetch")
        .input("Bus_free")
        .input_weighted("Empty_I_buffers", 2)
        .output("Bus_busy")
        .output("pre_fetching")
        .add();
    // Memory takes 5 cycles: an enabling delay (paper §1).
    b.transition("End_prefetch")
        .input("Bus_busy")
        .input("pre_fetching")
        .output("Bus_free")
        .output_weighted("Full_I_buffers", 2)
        .enabling(5)
        .add();
    // Decoding one instruction takes one cycle: a firing time.
    b.transition("Decode")
        .input("Full_I_buffers")
        .input("Decoder_ready")
        .output("Decoded_instruction")
        .output("Empty_I_buffers")
        .firing(1)
        .add();
    // Consume decoded instructions so the pipeline keeps moving.
    b.transition("Issue")
        .input("Decoded_instruction")
        .output("Decoder_ready")
        .firing(2)
        .add();
    let net = b.build()?;

    // 2. Simulate for 1000 cycles, streaming the trace simultaneously
    //    into a recorder and the statistics tool (paper §4.1: traces
    //    pipe directly into analysis tools).
    let mut sim = Simulator::new(&net, 42)?;
    let mut sinks = Tee::new(Recorder::new(), StatCollector::new());
    let summary = sim.run(Time::from_ticks(1000), &mut sinks)?;
    let (recorder, collector) = sinks.into_parts();

    println!(
        "simulated {} cycles: {} events started, {} finished\n",
        summary.end_time, summary.events_started, summary.events_finished
    );

    // 3. The Figure 5 style statistics report.
    let report = collector.into_report().expect("run completed");
    println!("{report}");

    // 4. Interpret (paper §4.2): Bus_busy average = bus utilization.
    let bus = report.place("Bus_busy").expect("model has a bus");
    println!("bus utilization: {:.1}%", bus.avg_tokens * 100.0);
    let decode = report.transition("Decode").expect("model decodes");
    println!(
        "decode throughput: {:.4} instructions/cycle",
        decode.throughput
    );

    // 5. And the recorded trace supports deeper tools — count states.
    let trace = recorder.into_trace().expect("run completed");
    println!(
        "trace: {} deltas, {} states",
        trace.deltas().len(),
        trace.states().count()
    );
    Ok(())
}
