//! Modeling a realistic instruction set with the §3 interpreted model.
//!
//! The paper argues that per-instruction subnets explode for real
//! instruction sets (variable lengths, ~30 addressing modes), and that
//! predicates/actions keep the net small: one `Decode` transition picks
//! the type with `irand` and tables drive everything else. This example
//! builds a 10-type CISC-ish ISA, runs it, and shows that the *net* is
//! no bigger than the simple model while the workload is far richer.
//!
//! Run with: `cargo run --example instruction_set`

use pnut::core::Time;
use pnut::pipeline::interpreted::{build, InstructionType, InterpretedConfig};
use pnut::pipeline::{three_stage, ThreeStageConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10-type instruction set: lengths 1-3 words, 0-2 memory operands,
    // execution 1-60 cycles, some storing results. Duplicated entries
    // shape the type distribution (irand is uniform over table slots).
    let isa = vec![
        // register-register ALU ops (common: three slots)
        InstructionType::simple(0, 1, 1),
        InstructionType::simple(0, 1, 1),
        InstructionType::simple(0, 1, 2),
        // loads with short/long displacement
        InstructionType::simple(1, 2, 2),
        InstructionType::simple(1, 3, 2),
        // stores
        InstructionType {
            operands: 0,
            length_words: 2,
            exec_cycles: 1,
            stores_result: true,
            is_branch: false,
        },
        InstructionType {
            operands: 1,
            length_words: 2,
            exec_cycles: 2,
            stores_result: true,
            is_branch: false,
        },
        // memory-to-memory move
        InstructionType {
            operands: 2,
            length_words: 3,
            exec_cycles: 3,
            stores_result: true,
            is_branch: false,
        },
        // a taken branch: flushes the prefetch buffer on issue
        InstructionType {
            operands: 0,
            length_words: 2,
            exec_cycles: 2,
            stores_result: false,
            is_branch: true,
        },
        // multiply
        InstructionType::simple(1, 2, 12),
    ];
    let config = InterpretedConfig {
        instruction_types: isa,
        ..InterpretedConfig::default()
    };
    let net = build(&config)?;

    let simple = three_stage::build(&ThreeStageConfig::default())?;
    println!(
        "net sizes — interpreted: {} places / {} transitions; simple §2 model: {} / {}",
        net.place_count(),
        net.transition_count(),
        simple.place_count(),
        simple.transition_count(),
    );

    let trace = pnut::sim::simulate(&net, 13, Time::from_ticks(20_000))?;
    let report = pnut::stat::analyze(&trace);
    println!("\n{report}");

    let issue = report.transition("Issue").expect("model issues");
    let bus = report.place("Bus_busy").expect("model has a bus");
    println!("instructions / cycle: {:.4}", issue.throughput);
    println!("bus utilization:      {:.4}", bus.avg_tokens);
    println!(
        "operand fetches:      {}",
        report.transition("end_fetch").expect("model fetches").ends
    );
    println!(
        "result stores:        {}",
        report.transition("end_store").expect("model stores").ends
    );
    Ok(())
}
