//! A stop-and-wait protocol with timeout retransmission — the paper's
//! other domain.
//!
//! "This form of time is particularly convenient for modeling timeouts
//! in communications protocols" (§1, on enabling times): Razouk and
//! Phelps' earlier P-NUT work [RP84] analyzed protocols. This example
//! models a sender/receiver pair over a lossy channel:
//!
//! * the channel loses each frame with probability 0.2 (competing
//!   deliver/lose transitions with frequencies 0.8/0.2);
//! * delivery takes 3 ticks (enabling time on `deliver`);
//! * the sender retransmits if no ack arrives within 10 ticks — an
//!   enabling-time *timeout* that is cancelled (its clock reset) when
//!   the ack arrives first, exactly the semantics firing times cannot
//!   express;
//! * acks use a reverse channel with the same loss behaviour.
//!
//! The run demonstrates timeout cancellation, measures goodput and
//! retransmission rate, and verifies liveness queries on the trace.
//!
//! Run with: `cargo run --example protocol_timeout`

use pnut::core::{NetBuilder, Time};
use pnut::tracer::measure;
use pnut::tracer::query::Query;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = NetBuilder::new("stop_and_wait");

    // Sender.
    b.place("ready_to_send", 1);
    b.place("awaiting_ack", 0);
    // Forward channel.
    b.place("frame_in_flight", 0);
    // Receiver.
    b.place("frame_delivered", 0);
    // Reverse channel.
    b.place("ack_in_flight", 0);
    // Counters as token sinks.
    b.place("delivered_count", 0);
    b.place("retransmit_count", 0);
    b.place("lost_count", 0);

    // Send (or retransmit): put a frame on the channel, start waiting.
    b.transition("send")
        .input("ready_to_send")
        .output("frame_in_flight")
        .output("awaiting_ack")
        .firing(1)
        .add();

    // The lossy forward channel: deliver in 3 ticks or lose instantly
    // (the loss/delivery choice is resolved probabilistically the
    // moment both are possible; the enabling delay then models transit).
    b.transition("chan_deliver")
        .input("frame_in_flight")
        .output("frame_delivered")
        .enabling(3)
        .frequency(0.8)
        .add();
    b.transition("chan_lose")
        .input("frame_in_flight")
        .output("lost_count")
        .enabling(3)
        .frequency(0.2)
        .add();

    // Receiver acks; ack crosses the reverse channel (same loss model).
    b.transition("recv_and_ack")
        .input("frame_delivered")
        .output("ack_in_flight")
        .output("delivered_count")
        .firing(1)
        .add();
    b.transition("ack_deliver")
        .input("ack_in_flight")
        .inhibitor("frame_in_flight") // half-duplex reverse path
        .enabling(3)
        .frequency(0.8)
        .output("ack_received")
        .add();
    b.transition("ack_lose")
        .input("ack_in_flight")
        .enabling(3)
        .frequency(0.2)
        .output("lost_count")
        .add();
    b.place("ack_received", 0);

    // Ack completes the exchange...
    b.transition("complete")
        .input("awaiting_ack")
        .input("ack_received")
        .output("ready_to_send")
        .add();

    // ...or the timeout fires after 10 ticks of *continuous* waiting.
    // If the ack arrives first, `complete` consumes `awaiting_ack`,
    // disabling `timeout` and resetting its clock — the §1 semantics.
    b.transition("timeout")
        .input("awaiting_ack")
        .inhibitor("ack_received")
        .output("ready_to_send")
        .output("retransmit_count")
        .enabling(10)
        .add();

    let net = b.build()?;

    let trace = pnut::sim::simulate(&net, 2024, Time::from_ticks(20_000))?;
    let report = pnut::stat::analyze(&trace);

    let sends = report.transition("send").expect("model sends").ends;
    let delivered = report
        .place("delivered_count")
        .expect("counter exists")
        .max_tokens;
    let retransmits = report
        .place("retransmit_count")
        .expect("counter exists")
        .max_tokens;
    let lost = report
        .place("lost_count")
        .expect("counter exists")
        .max_tokens;

    println!("STOP-AND-WAIT OVER A LOSSY CHANNEL (20 000 ticks, loss 20%)");
    println!("  frames sent (incl. retransmissions) {sends}");
    println!("  frames delivered                    {delivered}");
    println!("  timeouts / retransmissions          {retransmits}");
    println!("  frames or acks lost                 {lost}");
    println!(
        "  goodput                             {:.4} frames/tick",
        f64::from(delivered) / 20_000.0
    );

    // Timing: the interval between successive completed exchanges.
    // (send→complete pairing is ill-defined under retransmission, since
    // several sends map to one completion; the exchange period is the
    // meaningful latency population.)
    if let Some(intervals) = measure::inter_start_intervals(&trace, "complete") {
        let mean = intervals.iter().sum::<u64>() as f64 / intervals.len().max(1) as f64;
        println!("  mean exchange period                {mean:.2} ticks");
        println!("\nexchange-period histogram (bucket = 5 ticks):");
        print!("{}", measure::Histogram::new(&intervals, 5));
    }

    // Verification: every send eventually returns the sender to ready.
    println!("\nVERIFICATION");
    for (note, text) in [
        (
            "sender never duplicated",
            "forall s in S [ ready_to_send(s) + awaiting_ack(s) <= 1 ]",
        ),
        (
            "waiting always ends (ack or timeout)",
            "forall s in {s' in S | awaiting_ack(s')} [ inev(s, ready_to_send(C), true) ]",
        ),
        (
            "progress was made",
            "exists s in S [ delivered_count(s) > 10 ]",
        ),
        (
            "timeouts actually occurred",
            "exists s in S [ retransmit_count(s) > 0 ]",
        ),
    ] {
        let outcome = Query::parse(text)?.check(&trace)?;
        println!("  [{}] {note}", if outcome.holds { "PASS" } else { "FAIL" });
    }
    Ok(())
}
