//! Analytical bounds vs. simulation, replications, and bottleneck
//! feedback — the toolset beyond single traces.
//!
//! 1. Build an idealized marked-graph abstraction of the pipeline (no
//!    choice: every instruction decodes 1 cycle, executes 3, one bus
//!    access of 5) and compute its *exact* cycle time analytically.
//! 2. Simulate the same marked graph and confirm agreement.
//! 3. Run the full stochastic §2 model with independent replications and
//!    a 95% confidence interval, and compare against the analytic
//!    serialized-fetch ideal — the real pipeline *beats* it, which
//!    quantifies exactly what the 6-word two-at-a-time prefetch buffer
//!    buys (amortized memory latency).
//! 4. Print the activity heatmap and timing measurements that point at
//!    the bottleneck.
//!
//! Run with: `cargo run --example analytic_bounds`

use pnut::anim::Heatmap;
use pnut::core::{Net, NetBuilder, Time};
use pnut::pipeline::{replicate, three_stage, ThreeStageConfig};
use pnut::tracer::measure;

/// An idealized deterministic pipeline as a timed marked graph:
/// fetch (5) -> decode (1) -> execute (3), one instruction slot per
/// stage, stages coupled by ready/free places.
fn ideal_pipeline() -> Result<Net, Box<dyn std::error::Error>> {
    let mut b = NetBuilder::new("ideal_pipeline");
    // Stage occupancy rings: each stage alternates busy/free.
    b.place("fetch_free", 1);
    b.place("fetched", 0);
    b.place("decode_free", 1);
    b.place("decoded", 0);
    b.place("exec_free", 1);
    b.transition("fetch")
        .input("fetch_free")
        .input("decode_free")
        .output("fetched")
        .firing(5)
        .add();
    b.transition("decode")
        .input("fetched")
        .input("exec_free")
        .output("decoded")
        .output("fetch_free")
        .firing(1)
        .add();
    b.transition("execute")
        .input("decoded")
        .output("decode_free")
        .output("exec_free")
        .firing(3)
        .add();
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Exact analysis --------------------------------------------------
    let ideal = ideal_pipeline()?;
    let analysis = pnut::analytic::analyze(&ideal)?;
    println!("IDEAL PIPELINE (timed marked graph)");
    println!(
        "  cycle time        {} cycles/instruction",
        analysis.cycle_time
    );
    println!(
        "  throughput        {:.4} instructions/cycle",
        analysis.throughput()
    );
    let names: Vec<&str> = analysis
        .critical_cycle
        .iter()
        .map(|&t| ideal.transition(t).name())
        .collect();
    println!("  critical cycle    {}", names.join(" -> "));

    // --- 2. Simulation agrees with the analysis -----------------------------
    let trace = pnut::sim::simulate(&ideal, 0, Time::from_ticks(20_000))?;
    let report = pnut::stat::analyze(&trace);
    let simulated = report
        .transition("execute")
        .expect("model executes")
        .throughput;
    println!(
        "  simulated         {simulated:.4} instructions/cycle (Δ {:.2}%)",
        (simulated - analysis.throughput()).abs() / analysis.throughput() * 100.0
    );

    // --- 3. The stochastic model under replication --------------------------
    let replicated = replicate(&ThreeStageConfig::default(), 8, 10_000)?;
    println!("\n{replicated}");
    let gain = (replicated.instructions_per_cycle.mean / analysis.throughput() - 1.0) * 100.0;
    println!(
        "The serialized-fetch ideal manages {:.4}; the real pipeline's buffered\n\
         two-word prefetch amortizes memory latency and gains {gain:+.1}% despite\n\
         its stochastic stalls.",
        analysis.throughput(),
    );

    // --- 4. Where is the bottleneck? ----------------------------------------
    let net = three_stage::build(&ThreeStageConfig::default())?;
    let full_trace = pnut::sim::simulate(&net, 1, Time::from_ticks(10_000))?;
    println!("\n{}", Heatmap::from_trace(&full_trace));

    if let Some(stats) = measure::place_pulses(&full_trace, "Bus_busy") {
        println!("Bus_busy pulses: {stats}");
    }
    if let Some(intervals) = measure::inter_start_intervals(&full_trace, "Issue") {
        println!("\nIssue-to-Issue interval histogram (bucket = 4 cycles):");
        print!("{}", measure::Histogram::new(&intervals, 4));
    }
    if let Some(lat) = measure::latencies(&full_trace, "Decode", "Issue") {
        let mean = lat.iter().sum::<u64>() as f64 / lat.len().max(1) as f64;
        println!(
            "Decode -> Issue mean latency: {mean:.2} cycles over {} pairs",
            lat.len()
        );
    }
    Ok(())
}
