//! Performance study of the paper's three-stage pipelined processor.
//!
//! Reproduces the §2/§4.2 experiment (Figure 5) and then does what the
//! paper's introduction motivates: varies memory speed to see its
//! "strong yet difficult to predict impact" on performance, and
//! compares against a non-pipelined baseline.
//!
//! Run with: `cargo run --example pipeline_study`

use pnut::core::Time;
use pnut::pipeline::{run_experiment, sequential, three_stage, ThreeStageConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The Figure 5 experiment -----------------------------------------
    let config = ThreeStageConfig::default();
    let outcome = run_experiment(&config, 1, 10_000)?;
    println!("{}", outcome.report);
    println!("{}", outcome.metrics);

    // --- Memory-speed sweep (intro motivation) ---------------------------
    println!("MEMORY-SPEED SWEEP (pipelined vs sequential, 20k cycles, seed 7)");
    println!(
        "{:>10} {:>12} {:>12} {:>9}",
        "mem cycles", "pipe IPC", "seq IPC", "speedup"
    );
    for mem in [1u64, 2, 3, 5, 8, 12] {
        let mut c = config.clone();
        c.mem_access_cycles = mem;

        let pipe_net = three_stage::build(&c)?;
        let pipe_trace = pnut::sim::simulate(&pipe_net, 7, Time::from_ticks(20_000))?;
        let pipe_report = pnut::stat::analyze(&pipe_trace);
        let pipe_ipc = pipe_report
            .transition("Issue")
            .expect("model has Issue")
            .throughput;

        let seq_net = sequential::build(&c)?;
        let seq_trace = pnut::sim::simulate(&seq_net, 7, Time::from_ticks(20_000))?;
        let seq_report = pnut::stat::analyze(&seq_trace);
        let seq_ipc = sequential::instructions_per_cycle(&seq_report).expect("baseline has retire");

        println!(
            "{:>10} {:>12.4} {:>12.4} {:>8.2}x",
            mem,
            pipe_ipc,
            seq_ipc,
            pipe_ipc / seq_ipc
        );
    }

    // --- Cache extension (§3) ---------------------------------------------
    println!("\nCACHE HIT-RATIO SWEEP (pipelined, mem=5, hit=1 cycle)");
    println!(
        "{:>10} {:>12} {:>14}",
        "hit ratio", "IPC", "bus utilization"
    );
    for hit in [0.0, 0.5, 0.8, 0.95] {
        let mut c = config.clone();
        c.cache = Some(pnut::pipeline::CacheConfig {
            hit_ratio: hit,
            hit_cycles: 1,
        });
        let o = run_experiment(&c, 7, 20_000)?;
        println!(
            "{:>10.2} {:>12.4} {:>14.4}",
            hit, o.metrics.instructions_per_cycle, o.metrics.bus_utilization
        );
    }
    Ok(())
}
